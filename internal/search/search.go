package search

import (
	"fmt"
	"math/rand"
	"time"

	"fedrlnas/internal/cohort"
	"fedrlnas/internal/controller"
	"fedrlnas/internal/data"
	"fedrlnas/internal/detrand"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
	"fedrlnas/internal/scenario"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/transmission"
)

// Search holds the live state of one federated model search.
type Search struct {
	cfg Config
	ds  *data.Dataset
	// pop is the lazy participant registry: enrolled clients cost nothing
	// until first sampled into a cohort. sampler draws each round's cohort
	// deterministically from the run seed; when it is full (CohortSize 0)
	// every round runs the whole population and the engine behaves — bit
	// for bit — like the pre-population code.
	pop     *fed.Population
	sampler *cohort.Sampler
	net     *nas.Supernet
	ctrl    *controller.Controller

	// Scenario lowering: profiles are the population's resolved device
	// profiles and profileOf[k] is participant k's profile index (both nil
	// without a scenario population). partition is retained so scenario
	// consumers (benchprofiles' per-client evaluation) can inspect shards.
	profiles  []scenario.Profile
	profileOf []int
	partition data.Partition

	// Personalization (federated body / local head): headStart is the
	// canonical index of the first classifier-head parameter (head params
	// are the tail of Params()'s canonical order), bodyParams the shared
	// prefix the federated optimizer steps, headInit the supernet's initial
	// head values every client starts from, and heads each sampled client's
	// private head. heads is only written single-threaded — materialization
	// before the parallel phase, per-client tensor updates inside it touch
	// pre-existing entries for distinct pids.
	personalize bool
	headLR      float64
	headStart   int
	bodyParams  []*nn.Param
	headInit    []*tensor.Tensor
	heads       map[int][]*tensor.Tensor

	thetaOpt *nn.SGD
	rng      *rand.Rand
	// rngSrc is the counting source behind rng; checkpoints persist its
	// position so a resumed run continues the gate/transmission stream
	// exactly where the saved run stopped.
	rngSrc *detrand.Source

	paramIndex map[*nn.Param]int

	// pool fans participant local steps out across worker slots; replicas
	// holds one private supernet copy per slot and primaryBNs the primary
	// network's batch-norm layers, index-aligned with every replica's (see
	// engine.go).
	pool       *parallel.Pool
	replicas   []*workerReplica
	primaryBNs []*nn.BatchNorm2D

	thetaPool  *staleness.Pool[[]*tensor.Tensor]
	alphaPool  *staleness.Pool[controller.AlphaSnapshot]
	gatesPool  *staleness.Pool[[]nas.Gates]
	cohortPool *staleness.Pool[[]int]

	// scratch holds per-participant persistent merge buffers (engine.go);
	// the remaining fields are round-scoped slices reused across rounds so a
	// steady-state round allocates no bookkeeping storage. thetaView is the
	// zero-copy θ "snapshot" used when no stale read can ever occur (see
	// canAliasTheta).
	scratch     []partScratch
	thetaView   []*tensor.Tensor
	cohortIDs   []int
	sampled     []nas.Gates
	sizes       []int64
	bw          []float64
	assigned    []nas.Gates
	results     []partResult
	aggTheta    []*tensor.Tensor
	aggAlphaBuf controller.AlphaGrad

	round int

	// tracer receives per-round span events; nil (the default) is a
	// zero-cost no-op. met holds the registry-backed counters that are
	// the source of truth for all reply accounting.
	tracer *telemetry.Tracer
	met    telemetry.RoundMetrics

	// Stats tallies reply handling across all rounds. It is a façade
	// refreshed from the telemetry counters after every round.
	Stats RoundStats
	// Observer, when set, receives a report after every round.
	Observer func(RoundReport)

	// Curves and accounting, populated as phases run.
	WarmupCurve   metrics.Curve
	SearchCurve   metrics.Curve
	EntropyCurve  metrics.Curve
	BaselineCurve metrics.Curve
	RoundSeconds  []float64
	// SubModelBytes records the payload of every sub-model ever shipped.
	SubModelBytes []int64
}

// New constructs a search over a freshly generated dataset and participant
// population.
func New(cfg Config) (*Search, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The compute precision is process-wide (see nn.SetPrecision); applying
	// it here keeps every replica the run materializes on the same
	// arithmetic from the first forward pass.
	nn.SetPrecision(cfg.Precision)
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	rng, rngSrc := detrand.New(cfg.Seed)
	// Scenario lowering, stage 1: the data partition. A scenario population
	// assigns profiles first (a pure function of the enrollment seed) and
	// partitions per profile group; a population-less Skew routes through
	// the SAME legacy partitioner calls on the SAME rng the flag-driven
	// path uses, so lowering old flags into a Spec is bit-identical.
	spec := cfg.Scenario
	profiles, fracs, err := spec.Resolve()
	if err != nil {
		return nil, fmt.Errorf("search: scenario: %w", err)
	}
	var profileOf []int
	var part data.Partition
	switch {
	case len(profiles) > 0:
		profileOf = scenario.Assign(fracs, cfg.K, cfg.Seed)
		part, err = scenario.PartitionFor(ds.TrainLabels, cfg.K, profileOf, profiles, spec.Skew, rng)
	case spec != nil && spec.Skew != nil && spec.Skew.Kind == scenario.SkewDirichlet:
		part, err = data.DirichletPartition(ds.TrainLabels, cfg.K, spec.Skew.Alpha, rng)
	case spec != nil && spec.Skew != nil:
		part, err = data.IIDPartition(ds.NumTrain(), cfg.K, rng)
	case cfg.Partition == IID:
		part, err = data.IIDPartition(ds.NumTrain(), cfg.K, rng)
	default:
		part, err = data.DirichletPartition(ds.TrainLabels, cfg.K, cfg.DirichletAlpha, rng)
	}
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	// Every shard must be non-empty before the population is trusted to
	// materialize lazily: checking here keeps later Get calls infallible.
	for k, indices := range part.Indices {
		if len(indices) == 0 {
			return nil, fmt.Errorf("search: participant %d has an empty shard", k)
		}
	}
	pop := fed.NewPopulation(part, cfg.Seed+101)
	// Scenario lowering, stage 2: per-participant speed, bandwidth and
	// availability, installed as lazy functions of the stable participant
	// id so materialization order never matters. Trace sampling cannot fail
	// here: every regime name was parsed during Validate.
	if len(profiles) > 0 {
		rounds := cfg.WarmupSteps + cfg.SearchSteps
		if rounds <= 0 {
			rounds = 1
		}
		seed := cfg.Seed
		pop.SetSpeedFn(func(k int) float64 { return profiles[profileOf[k]].SpeedFactor() })
		pop.SetChurnFn(func(k int) float64 { return profiles[profileOf[k]].Churn })
		pop.SetTraceFn(func(k int) nettrace.Trace {
			tr, _ := profiles[profileOf[k]].ParticipantTrace(rounds, seed+404, k)
			return tr
		})
	}
	sampler, err := cohort.New(cfg.Seed+303, cfg.K, cfg.CohortSize)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+202)), cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	nE, rE := net.ArchSpace()
	ctrl, err := controller.New(nE, rE, net.NumCandidates(), cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	s := &Search{
		cfg:       cfg,
		ds:        ds,
		pop:       pop,
		sampler:   sampler,
		net:       net,
		ctrl:      ctrl,
		profiles:  profiles,
		profileOf: profileOf,
		partition: part,
		thetaOpt:  nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip),
		rng:       rng,
		rngSrc:    rngSrc,
	}
	if sampler.Full() {
		// Full-population mode materializes everyone up front (the legacy
		// behavior) and uses a fixed identity cohort.
		if _, err := pop.All(); err != nil {
			return nil, fmt.Errorf("search: %w", err)
		}
		s.cohortIDs = sampler.Cohort(0)
	}
	// Retention covers whichever is larger: the configured threshold Δ or
	// the worst delay the schedule can actually produce (the default
	// StalenessThreshold of 0 leaves sizing entirely to the schedule,
	// preserving pre-SyncConfig behavior bit for bit).
	delta := cfg.StalenessThreshold
	if d := cfg.Staleness.MaxDelay(); d > delta {
		delta = d
	}
	s.thetaPool = staleness.NewPool[[]*tensor.Tensor](delta)
	s.alphaPool = staleness.NewPool[controller.AlphaSnapshot](delta)
	s.gatesPool = staleness.NewPool[[]nas.Gates](delta)
	s.cohortPool = staleness.NewPool[[]int](delta)
	s.paramIndex = make(map[*nn.Param]int)
	netParams := net.Params()
	for i, p := range netParams {
		s.paramIndex[p] = i
	}
	// Personalization mode: the classifier head's parameters (the tail of
	// the canonical order) leave the federated update entirely — each
	// client trains a private copy seeded from the supernet's initial head.
	if spec != nil && spec.Personalize {
		s.personalize = true
		s.headLR = spec.HeadLR
		if s.headLR <= 0 {
			s.headLR = cfg.ThetaLR
		}
		s.headStart = len(netParams) - len(net.HeadParams())
		s.bodyParams = netParams[:s.headStart]
		s.headInit = nn.CloneParamValues(netParams[s.headStart:])
		s.heads = make(map[int][]*tensor.Tensor)
	}
	// All round-scoped state is sized by the cohort, not the population:
	// scratch/merge buffers are keyed by cohort position and handed to
	// whichever participant occupies that position each round, so enrolled
	// K can grow 1000× without growing resident memory.
	cohortLen := sampler.Size()
	s.scratch = make([]partScratch, cohortLen)
	for j := range s.scratch {
		s.scratch[j].gradBufs = make([]*tensor.Tensor, len(netParams))
	}
	s.sampled = make([]nas.Gates, cohortLen)
	s.sizes = make([]int64, cohortLen)
	s.bw = make([]float64, cohortLen)
	s.results = make([]partResult, cohortLen)
	s.aggTheta = make([]*tensor.Tensor, len(netParams))
	s.met = telemetry.NewDisabledRoundMetrics()
	net.SetTraining(true)

	s.pool = parallel.New(cfg.Workers)
	nrep := s.pool.Workers()
	if nrep > cohortLen {
		nrep = cohortLen
	}
	s.replicas, err = newWorkerReplicas(nrep, cfg.Seed+202, cfg)
	if err != nil {
		return nil, err
	}
	s.primaryBNs = net.BatchNorms()
	return s, nil
}

// SetTelemetry attaches a span tracer and a metric registry to the search.
// Both may be nil: a nil tracer disables tracing at zero cost, and a nil
// registry keeps the private one created by New. Call it before Warmup/Run;
// rebinding mid-search restarts the Stats façade from the new registry's
// counter values.
func (s *Search) SetTelemetry(tracer *telemetry.Tracer, reg *telemetry.Registry) {
	s.tracer = tracer
	// A traced search gets a trace ID up front so every round opens a span
	// and phase events correlate in cmd/fedtrace.
	s.tracer.EnsureTraceID()
	if reg != nil {
		s.met = telemetry.NewRoundMetrics(reg)
		s.Stats = s.statsFromCounters()
		s.pool.Observe(reg)
	}
}

// statsFromCounters materializes the RoundStats façade from the registry.
func (s *Search) statsFromCounters() RoundStats {
	return RoundStats{
		Fresh:   int(s.met.RepliesFresh.Value()),
		Late:    int(s.met.RepliesLate.Value()),
		Dropped: int(s.met.RepliesDropped.Value()),
		Offline: int(s.met.Offline.Value()),
	}
}

// Dataset exposes the generated dataset (for retraining and evaluation).
func (s *Search) Dataset() *data.Dataset { return s.ds }

// Participants exposes the participant population, materializing any not
// yet built. Cohort-mode callers that only need counts should prefer
// Population to keep the registry lazy.
func (s *Search) Participants() []*fed.Participant {
	// New validated every shard non-empty, so materialization cannot fail.
	parts, _ := s.pop.All()
	return parts
}

// Population exposes the lazy participant registry.
func (s *Search) Population() *fed.Population { return s.pop }

// CohortSize returns the number of participants sampled each round (K
// when cohort sampling is off).
func (s *Search) CohortSize() int { return s.sampler.Size() }

// CohortFor returns the cohort the sampler assigns to a round, sorted
// ascending. The schedule is a pure function of the run seed, so the
// result is the same whether the round has run, will run, or never runs —
// and in particular is independent of churn, staleness, and every other
// consumer of randomness.
func (s *Search) CohortFor(round int) []int { return s.sampler.Cohort(round) }

// Supernet exposes the supernet under search.
func (s *Search) Supernet() *nas.Supernet { return s.net }

// Controller exposes the RL controller.
func (s *Search) Controller() *controller.Controller { return s.ctrl }

// AttachTraces assigns bandwidth traces to the participant population
// (positionally, applied lazily as participants materialize).
func (s *Search) AttachTraces(traces []nettrace.Trace) error {
	if len(traces) != s.pop.Len() {
		return fmt.Errorf("fed: %d traces for %d participants", len(traces), s.pop.Len())
	}
	s.pop.SetTraceFn(func(k int) nettrace.Trace { return traces[k] })
	return nil
}

// SetSpeedFactors assigns per-participant compute speed factors (Table V's
// device classes); a single value is broadcast to everyone.
func (s *Search) SetSpeedFactors(factors ...float64) error {
	switch len(factors) {
	case 1:
		s.pop.SetSpeedFn(func(int) float64 { return factors[0] })
	case s.pop.Len():
		s.pop.SetSpeedFn(func(k int) float64 { return factors[k] })
	default:
		return fmt.Errorf("search: %d speed factors for %d participants", len(factors), s.pop.Len())
	}
	return nil
}

// SnapshotTheta deep-copies the current supernet weights (used to share one
// warmed-up supernet across strategy comparisons, as Fig. 8 does).
func (s *Search) SnapshotTheta() []*tensor.Tensor {
	return nn.CloneParamValues(s.net.Params())
}

// RestoreTheta loads supernet weights from a snapshot.
func (s *Search) RestoreTheta(snap []*tensor.Tensor) error {
	return nn.RestoreParamValues(s.net.Params(), snap)
}

// Warmup runs P1: cfg.WarmupSteps rounds training θ only, sampling
// architectures uniformly (α frozen at its uniform initialization).
func (s *Search) Warmup() error {
	for i := 0; i < s.cfg.WarmupSteps; i++ {
		acc, err := s.runRound(false, true)
		if err != nil {
			return fmt.Errorf("warmup round %d: %w", i, err)
		}
		s.WarmupCurve.Add(s.round-1, acc)
	}
	return nil
}

// Run executes P2: cfg.SearchSteps rounds of Alg. 1.
func (s *Search) Run() error {
	for i := 0; i < s.cfg.SearchSteps; i++ {
		acc, err := s.runRound(true, !s.cfg.AlphaOnly)
		if err != nil {
			return fmt.Errorf("search round %d: %w", i, err)
		}
		s.SearchCurve.Add(s.round-1, acc)
		s.EntropyCurve.Add(s.round-1, s.ctrl.Entropy())
		s.BaselineCurve.Add(s.round-1, s.ctrl.Baseline())
	}
	return nil
}

// Derive returns the argmax genotype under the current policy.
func (s *Search) Derive() nas.Genotype {
	return s.ctrl.Derive(s.cfg.Net.Candidates, s.cfg.Net.Nodes)
}

// TotalSeconds returns the virtual time consumed by all rounds so far.
func (s *Search) TotalSeconds() float64 {
	total := 0.0
	for _, v := range s.RoundSeconds {
		total += v
	}
	return total
}

// MeanSubModelBytes returns the average shipped sub-model payload.
func (s *Search) MeanSubModelBytes() int64 {
	if len(s.SubModelBytes) == 0 {
		return 0
	}
	var total int64
	for _, b := range s.SubModelBytes {
		total += b
	}
	return total / int64(len(s.SubModelBytes))
}

// RoundStats tallies how participant updates were handled.
type RoundStats struct {
	// Fresh counts updates computed against the current round's state.
	Fresh int
	// Late counts stale-but-within-threshold updates that were applied
	// (with or without delay compensation, per the strategy).
	Late int
	// Dropped counts updates beyond the staleness threshold or discarded
	// by the Throw strategy.
	Dropped int
	// Offline counts participants skipped by churn.
	Offline int
}

// RoundReport is the per-round summary delivered to Search.Observer.
type RoundReport struct {
	Round        int
	MeanAccuracy float64
	Entropy      float64
	Baseline     float64
	Seconds      float64
	Stats        RoundStats // this round only
}

// noStaleReads reports whether a stale snapshot read can ever occur. Under
// hard synchronization, or a schedule whose staleness threshold is zero,
// every update is fresh or dropped, so the θ/α/gates memories are write-only
// and their entries may alias live, round-scoped storage instead of deep
// copies.
func (s *Search) noStaleReads() bool {
	return s.cfg.Strategy == staleness.Hard || s.cfg.Staleness.MaxDelay() == 0
}

// runRound executes one communication round of Alg. 1 and returns the mean
// training accuracy of the participants' sub-models.
func (s *Search) runRound(updateAlpha, updateTheta bool) (float64, error) {
	t := s.round
	params := s.net.Params()
	s.tracer.RoundStart(t)
	// Snapshot the cumulative counters so this round's deltas can be
	// reported to the Observer without a second tally.
	fresh0 := s.met.RepliesFresh.Value()
	late0 := s.met.RepliesLate.Value()
	dropped0 := s.met.RepliesDropped.Value()
	offline0 := s.met.Offline.Value()

	// Alg. 1 lines 4–7: snapshot θ, α and per-participant gates. When no
	// stale read can ever occur (see noStaleReads) the θ and α "snapshots"
	// alias the live state instead of deep-copying it: the parallel phase
	// only reads them, and the optimizer steps only after the merge.
	var thetaNow []*tensor.Tensor
	var alphaNow controller.AlphaSnapshot
	if s.noStaleReads() {
		if len(s.thetaView) != len(params) {
			s.thetaView = make([]*tensor.Tensor, len(params))
			for i, p := range params {
				s.thetaView[i] = p.Value
			}
		}
		thetaNow = s.thetaView
		alphaNow = s.ctrl.View()
	} else {
		thetaNow = nn.CloneParamValues(params)
		alphaNow = s.ctrl.Snapshot()
	}
	s.thetaPool.Put(t, thetaNow)
	s.alphaPool.Put(t, alphaNow)

	// Draw the round's cohort (identity when sampling is off). The sorted
	// id slice is what late rounds consult to locate a straggler's old
	// cohort position, so like the gates it is only reused as a buffer
	// when no stale read can ever occur.
	cohortIDs := s.cohortIDs
	if !s.sampler.Full() {
		if s.noStaleReads() {
			cohortIDs = s.sampler.AppendCohort(s.cohortIDs[:0], t)
			s.cohortIDs = cohortIDs
		} else {
			cohortIDs = s.sampler.Cohort(t)
		}
		s.cohortPool.Put(t, cohortIDs)
	}

	// Lines 5–9: sample a binary mask per cohort member. Sizes are the
	// measured wire-frame bytes each sub-model would occupy on the RPC
	// transport under cfg.Wire — the quantity adaptive transmission
	// actually saves — not the old 4-bytes-per-param estimate.
	sampled, sizes := s.sampled, s.sizes
	for j, pid := range cohortIDs {
		sampled[j] = s.ctrl.SampleGates(s.rng)
		sizes[j] = s.net.SubModelWireBytes(sampled[j], s.cfg.Wire)
		s.tracer.SubModelSample(t, pid, sizes[j])
	}

	// Lines 10–11: adaptive transmission. This loop also materializes any
	// cohort member not yet built — before the parallel phase, so lazy
	// construction stays single-threaded.
	bw := s.bw
	for j, pid := range cohortIDs {
		p, err := s.pop.Get(pid)
		if err != nil {
			return 0, err
		}
		if s.personalize {
			// Personal heads materialize here, single-threaded, so the
			// parallel phase only ever touches pre-existing map entries.
			s.ensureHead(pid)
		}
		bw[j] = bandwidthAt(p, t)
	}
	assign, err := transmission.Assign(s.cfg.Transmission, sizes, bw, s.rng)
	if err != nil {
		return 0, err
	}
	// assigned[j] is the sub-model cohort position j actually trains. The
	// gates pool may serve this slice to a stale read in a later round, so
	// it is only reused when no such read can occur.
	assigned := s.assigned
	if assigned == nil || !s.noStaleReads() {
		assigned = make([]nas.Gates, len(cohortIDs))
		s.assigned = assigned
	}
	for j, pid := range cohortIDs {
		assigned[j] = sampled[assign.ModelFor[j]]
		sz := sizes[assign.ModelFor[j]]
		s.SubModelBytes = append(s.SubModelBytes, sz)
		s.met.SubModelBytes.Observe(float64(sz))
		s.tracer.TxAssign(t, pid, sz, assign.LatencySeconds[j])
	}
	s.gatesPool.Put(t, assigned)

	// Participant local steps (Alg. 1 lines 37–42), fanned out across the
	// worker pool. Each task runs on a private supernet replica; the primary
	// network's weights are never touched during the parallel phase (see
	// engine.go for the determinism argument).
	ctx := &roundCtx{t: t, thetaNow: thetaNow, alphaNow: alphaNow, assigned: assigned, assign: assign}
	results := s.results
	dispatchStart := time.Now()
	if err := s.pool.Run(len(cohortIDs), func(worker, j int) error {
		return s.runParticipant(s.replicas[worker], j, cohortIDs[j], ctx, &results[j])
	}); err != nil {
		return 0, err
	}
	var dispatchBytes int64
	for j := range cohortIDs {
		dispatchBytes += sizes[assign.ModelFor[j]]
	}
	s.tracer.RoundDispatch(t, dispatchBytes, time.Since(dispatchStart).Seconds())

	// Ordered merge (Alg. 1 lines 16–31): aggregate in cohort-position
	// (ascending participant id) order so every sum — and the replayed
	// batch-norm statistics — is bit-identical regardless of task
	// scheduling. The scalar/α/batch-norm accumulators merge sequentially
	// here; θ merges in the sharded pass below.
	mergeStart := time.Now()
	aggTheta := s.aggTheta
	for i := range aggTheta {
		aggTheta[i] = nil
	}
	if s.aggAlphaBuf.Normal == nil {
		nE, rE := s.net.ArchSpace()
		s.aggAlphaBuf = controller.NewAlphaGrad(nE, rE, s.net.NumCandidates())
	} else {
		s.aggAlphaBuf.Zero()
	}
	aggAlpha := s.aggAlphaBuf
	contributors := 0
	sumAcc := 0.0
	roundSeconds := 0.0
	for j := range cohortIDs {
		res := &results[j]
		if res.status != partContributed {
			continue
		}
		aggAlpha.AXPY(res.reward, res.logGrad)
		for layer, recs := range res.bnStats {
			for _, rec := range recs {
				s.primaryBNs[layer].ApplyStats(rec)
			}
		}
		contributors++
		sumAcc += res.acc
		if res.delay == 0 && res.rt > roundSeconds {
			roundSeconds = res.rt
		}
	}
	// Sharded θ aggregation tree: the parameter index space is split into
	// contiguous ranges and each shard folds every contributing reply —
	// still in cohort-position order — into its own range. Because
	// sharding is by destination index, each accumulator receives exactly
	// the additions, in exactly the order, of the single-shard merge, so
	// the result is bit-identical at every shard count (shards=1 IS the
	// legacy sequential merge).
	shards := s.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if err := s.pool.RunShards(len(params), shards, func(_ int, r parallel.Range) error {
		for j := range cohortIDs {
			res := &results[j]
			if res.status != partContributed {
				continue
			}
			for i, idx := range res.subIdx {
				if idx < r.Lo || idx >= r.Hi {
					continue
				}
				if aggTheta[idx] == nil {
					aggTheta[idx] = res.grads[i]
				} else {
					aggTheta[idx].AddInPlace(res.grads[i])
				}
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	s.tracer.RoundMerge(t, contributors, time.Since(mergeStart).Seconds())

	updateStart := time.Now()
	meanAcc := 0.0
	if contributors > 0 {
		meanAcc = sumAcc / float64(contributors)
		inv := 1.0 / float64(contributors)
		if updateTheta {
			// In personalized mode only the shared body steps: head
			// gradients never enter the merge, and stepping the full list
			// would still weight-decay the global head toward zero.
			stepParams := params
			if s.personalize {
				stepParams = s.bodyParams
			}
			for i, p := range stepParams {
				p.Grad.Zero()
				if aggTheta[i] != nil {
					p.Grad.AXPY(inv, aggTheta[i])
				}
			}
			s.thetaOpt.Step(stepParams)
		}
		if updateAlpha {
			aggAlpha.Scale(inv)
			s.ctrl.Apply(aggAlpha)
			s.ctrl.UpdateBaseline(meanAcc)
			s.tracer.AlphaUpdate(t, s.ctrl.Entropy())
		}
	}
	s.tracer.ControllerUpdate(t, time.Since(updateStart).Seconds())

	s.RoundSeconds = append(s.RoundSeconds, roundSeconds)
	s.met.Rounds.Inc()
	s.met.RoundSeconds.Observe(roundSeconds)
	s.met.Accuracy.Set(meanAcc)
	s.met.Entropy.Set(s.ctrl.Entropy())
	s.met.Baseline.Set(s.ctrl.Baseline())
	s.Stats = s.statsFromCounters()
	s.tracer.RoundEnd(t, roundSeconds, meanAcc)
	if s.Observer != nil {
		s.Observer(RoundReport{
			Round:        t,
			MeanAccuracy: meanAcc,
			Entropy:      s.ctrl.Entropy(),
			Baseline:     s.ctrl.Baseline(),
			Seconds:      roundSeconds,
			Stats: RoundStats{
				Fresh:   int(s.met.RepliesFresh.Value() - fresh0),
				Late:    int(s.met.RepliesLate.Value() - late0),
				Dropped: int(s.met.RepliesDropped.Value() - dropped0),
				Offline: int(s.met.Offline.Value() - offline0),
			},
		})
	}
	s.round++
	s.thetaPool.Evict(s.round)
	s.alphaPool.Evict(s.round)
	s.gatesPool.Evict(s.round)
	s.cohortPool.Evict(s.round)
	return meanAcc, nil
}

func bandwidthAt(p *fed.Participant, round int) float64 {
	if len(p.Trace.Mbps) == 0 {
		return 100
	}
	return p.Trace.At(round)
}

// DeriveExcludingZero returns the argmax genotype with the "none" op
// excluded, the DARTS convention for final architectures (a zero edge would
// contribute nothing to the retrained model).
func (s *Search) DeriveExcludingZero() nas.Genotype {
	pn, pr := s.ctrl.Probs()
	return nas.DeriveGenotypeExcluding(pn, pr, s.cfg.Net.Candidates, s.cfg.Net.Nodes, nas.OpZero)
}

// Partition exposes the training-data partition (benchprofiles derives
// per-client test distributions from it).
func (s *Search) Partition() data.Partition { return s.partition }

// Profiles returns the scenario's resolved device profiles and the
// per-participant profile assignment (nil, nil without a scenario
// population).
func (s *Search) Profiles() ([]scenario.Profile, []int) { return s.profiles, s.profileOf }

// Personalized reports whether the search runs in federated-body /
// local-head mode.
func (s *Search) Personalized() bool { return s.personalize }

// ensureHead materializes participant pid's personal classifier head on
// first sample: a copy of the supernet's INITIAL head, so the result is
// independent of when (or in what order) clients are first drawn.
func (s *Search) ensureHead(pid int) {
	if s.heads[pid] != nil {
		return
	}
	head := make([]*tensor.Tensor, len(s.headInit))
	for i, t := range s.headInit {
		c := tensor.New(t.Shape()...)
		c.CopyFrom(t)
		head[i] = c
	}
	s.heads[pid] = head
}

// ArgmaxGates returns the per-edge argmax candidate under the current
// policy — the deterministic derived sub-model as a gate vector, suitable
// for ForwardSampled evaluation.
func (s *Search) ArgmaxGates() nas.Gates {
	pn, pr := s.ctrl.Probs()
	g := nas.Gates{Normal: make([]int, len(pn)), Reduce: make([]int, len(pr))}
	for e, row := range pn {
		g.Normal[e] = argmaxOf(row)
	}
	for e, row := range pr {
		g.Reduce[e] = argmaxOf(row)
	}
	return g
}

func argmaxOf(row []float64) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// EvalGates measures top-1 accuracy of the gated sub-model on the given
// test indices. pid >= 0 swaps that client's personal head in for the
// measurement (personalized runs only; an unsampled client falls back to
// the shared head); pid < 0 evaluates the shared global head.
func (s *Search) EvalGates(g nas.Gates, testIdx []int, batchSize int, pid int) float64 {
	if len(testIdx) == 0 || batchSize <= 0 {
		return 0
	}
	s.net.SetTraining(false)
	defer s.net.SetTraining(true)
	params := s.net.Params()
	if pid >= 0 && s.personalize {
		if head := s.heads[pid]; head != nil {
			saved := nn.CloneParamValues(params[s.headStart:])
			for i, t := range head {
				params[s.headStart+i].Value.CopyFrom(t)
			}
			defer func() {
				for i, t := range saved {
					params[s.headStart+i].Value.CopyFrom(t)
				}
			}()
		}
	}
	correct := 0.0
	for start := 0; start < len(testIdx); start += batchSize {
		end := start + batchSize
		if end > len(testIdx) {
			end = len(testIdx)
		}
		x, y := s.ds.GatherTest(testIdx[start:end])
		correct += nn.Accuracy(s.net.ForwardSampled(x, g), y) * float64(end-start)
	}
	return correct / float64(len(testIdx))
}
