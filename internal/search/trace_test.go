package search

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"fedrlnas/internal/telemetry"
)

// replyEvents parses a JSONL trace into per-round participant→event maps,
// considering only the reply.* span events.
func replyEvents(t *testing.T, raw []byte) map[int]map[int]string {
	t.Helper()
	rounds := make(map[int]map[int]string)
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var e struct {
			Event       string `json:"event"`
			Round       int    `json:"round"`
			Participant *int   `json:"participant"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		if !strings.HasPrefix(e.Event, "reply.") {
			continue
		}
		if e.Participant == nil {
			t.Fatalf("reply event without participant: %q", sc.Text())
		}
		if rounds[e.Round] == nil {
			rounds[e.Round] = make(map[int]string)
		}
		if prev, dup := rounds[e.Round][*e.Participant]; dup {
			t.Fatalf("round %d participant %d has two reply events (%s, %s)",
				e.Round, *e.Participant, prev, e.Event)
		}
		rounds[e.Round][*e.Participant] = e.Event
	}
	return rounds
}

// TestTraceParticipantIDsUnderConcurrency runs a churny search with the
// worker pool engaged and checks the JSONL trace it emits: every round must
// carry exactly one reply span per participant with the correct ID, and the
// per-round event sets must match a workers=1 run exactly (arrival order may
// differ; attribution may not).
func TestTraceParticipantIDsUnderConcurrency(t *testing.T) {
	runTrace := func(workers int) map[int]map[int]string {
		cfg := tinyConfig()
		cfg.WarmupSteps = 3
		cfg.SearchSteps = 8
		cfg.Seed = 23
		cfg.ChurnProb = 0.3
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		s.SetTelemetry(telemetry.NewJSONLTracer(&buf), nil)
		if err := s.Warmup(); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return replyEvents(t, buf.Bytes())
	}

	par := runTrace(4)
	seq := runTrace(1)

	cfgK := tinyConfig().K
	totalRounds := 3 + 8
	if len(par) != totalRounds {
		t.Fatalf("trace covers %d rounds, want %d", len(par), totalRounds)
	}
	for round, byPart := range par {
		if len(byPart) != cfgK {
			t.Fatalf("round %d has %d reply events, want %d: %v",
				round, len(byPart), cfgK, byPart)
		}
		for k := 0; k < cfgK; k++ {
			if _, ok := byPart[k]; !ok {
				t.Fatalf("round %d missing reply for participant %d", round, k)
			}
		}
		if fmt.Sprint(sortedEvents(byPart)) != fmt.Sprint(sortedEvents(seq[round])) {
			t.Fatalf("round %d events diverge between worker counts:\n  workers=4: %v\n  workers=1: %v",
				round, byPart, seq[round])
		}
	}
}

func sortedEvents(byPart map[int]string) []string {
	keys := make([]int, 0, len(byPart))
	for k := range byPart {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%d:%s", k, byPart[k]))
	}
	return out
}
