package search

import (
	"math"
	"testing"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/staleness"
)

// The observed fresh/late/dropped frequencies must match the configured
// staleness schedule — the tally is how Fig. 8's "70% staleness" is
// verified to actually be 70%.
func TestStatsMatchStalenessSchedule(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 120
	cfg.K = 6
	cfg.Staleness = staleness.Severe()
	cfg.Strategy = staleness.DC
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	total := float64(s.Stats.Fresh + s.Stats.Late + s.Stats.Dropped)
	if total == 0 {
		t.Fatal("no updates tallied")
	}
	freshFrac := float64(s.Stats.Fresh) / total
	dropFrac := float64(s.Stats.Dropped) / total
	// Severe: 30% fresh, 60% late, 10% dropped — but the earliest rounds
	// treat would-be-stale draws as fresh, so allow a band.
	if math.Abs(freshFrac-0.3) > 0.1 {
		t.Errorf("fresh fraction %.3f, want ~0.30", freshFrac)
	}
	if math.Abs(dropFrac-0.1) > 0.06 {
		t.Errorf("dropped fraction %.3f, want ~0.10", dropFrac)
	}
	if s.Stats.Offline != 0 {
		t.Errorf("offline %d without churn", s.Stats.Offline)
	}
}

func TestStatsHardSyncAllFresh(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 5
	cfg.SearchSteps = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Late != 0 || s.Stats.Dropped != 0 {
		t.Errorf("hard sync produced late=%d dropped=%d", s.Stats.Late, s.Stats.Dropped)
	}
	if s.Stats.Fresh != 10*cfg.K {
		t.Errorf("fresh %d, want %d", s.Stats.Fresh, 10*cfg.K)
	}
}

func TestStatsThrowDropsStale(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 40
	cfg.Staleness = staleness.Severe()
	cfg.Strategy = staleness.Throw
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Late != 0 {
		t.Errorf("throw strategy recorded %d late updates", s.Stats.Late)
	}
	if s.Stats.Dropped == 0 {
		t.Error("throw strategy dropped nothing under severe staleness")
	}
}

func TestObserverReceivesEveryRound(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 3
	cfg.SearchSteps = 4
	cfg.ChurnProb = 0.3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []RoundReport
	s.Observer = func(r RoundReport) { reports = append(reports, r) }
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 7 {
		t.Fatalf("observer saw %d rounds, want 7", len(reports))
	}
	for i, r := range reports {
		if r.Round != i {
			t.Errorf("report %d has round %d", i, r.Round)
		}
		if r.MeanAccuracy < 0 || r.MeanAccuracy > 1 {
			t.Errorf("round %d accuracy %v", i, r.MeanAccuracy)
		}
	}
	offline := 0
	for _, r := range reports {
		offline += r.Stats.Offline
	}
	if offline != s.Stats.Offline {
		t.Errorf("per-round offline sum %d != total %d", offline, s.Stats.Offline)
	}
	if s.Stats.Offline == 0 {
		t.Error("churn 0.3 over 7 rounds never took anyone offline")
	}
}

func TestOpPreferencesSumToOne(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	prefs := s.OpPreferences()
	if len(prefs) != len(cfg.Net.Candidates) {
		t.Fatalf("%d preferences for %d candidates", len(prefs), len(cfg.Net.Candidates))
	}
	var sumN, sumR float64
	for _, p := range prefs {
		sumN += p.NormalMass
		sumR += p.ReduceMass
	}
	if math.Abs(sumN-1) > 1e-9 || math.Abs(sumR-1) > 1e-9 {
		t.Errorf("masses sum to %.6f / %.6f, want 1", sumN, sumR)
	}
	// Sorted descending by combined mass.
	for i := 1; i < len(prefs); i++ {
		a := prefs[i-1].NormalMass + prefs[i-1].ReduceMass
		b := prefs[i].NormalMass + prefs[i].ReduceMass
		if b > a+1e-12 {
			t.Fatal("preferences not sorted")
		}
	}
	if out := FormatOpPreferences(prefs); len(out) == 0 {
		t.Error("empty preference rendering")
	}
}

func TestDeriveExcludingZeroHasNoZeroOps(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	g := s.DeriveExcludingZero()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, op := range append(g.Normal, g.Reduce...) {
		if op == nas.OpZero {
			t.Fatal("zero op survived exclusion")
		}
	}
}
