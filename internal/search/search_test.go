package search

import (
	"math"
	"testing"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/staleness"
)

// tinyConfig is a fast configuration for unit tests: a 5-class dataset,
// 2-layer supernet, 4 participants.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Dataset = data.Spec{
		Name: "tiny", NumClasses: 5, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 40, TestPerClass: 10, Noise: 1.0, Confusion: 0.3, Seed: 91,
	}
	cfg.Net = nas.Config{
		InChannels: 2, NumClasses: 5, C: 4, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
	cfg.K = 4
	cfg.BatchSize = 8
	cfg.WarmupSteps = 25
	cfg.SearchSteps = 50
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero K", func(c *Config) { c.K = 0 }},
		{"negative warmup", func(c *Config) { c.WarmupSteps = -1 }},
		{"zero batch", func(c *Config) { c.BatchSize = 0 }},
		{"zero theta lr", func(c *Config) { c.ThetaLR = 0 }},
		{"bad partition", func(c *Config) { c.Partition = PartitionKind(9) }},
		{"bad dirichlet alpha", func(c *Config) { c.Partition = Dirichlet; c.DirichletAlpha = 0 }},
		{"class mismatch", func(c *Config) { c.Net.NumClasses = 3 }},
		{"channel mismatch", func(c *Config) { c.Net.InChannels = 1 }},
		{"bad strategy", func(c *Config) { c.Strategy = staleness.Strategy(9) }},
		{"bad schedule", func(c *Config) { c.Staleness = staleness.Schedule{} }},
	}
	for _, m := range mutations {
		cfg := DefaultConfig()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestPartitionKindString(t *testing.T) {
	if IID.String() != "iid" || Dirichlet.String() != "dirichlet" {
		t.Error("partition kind strings wrong")
	}
}

func TestWarmupImprovesAccuracy(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 50
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if s.WarmupCurve.Len() != 50 {
		t.Fatalf("warmup curve has %d points", s.WarmupCurve.Len())
	}
	head := s.WarmupCurve.MovingAverage(5).Points[4].Value
	tail := s.WarmupCurve.TailMean(10)
	if tail <= head {
		t.Errorf("warmup did not improve: head %.3f tail %.3f", head, tail)
	}
	if tail < 1.0/5+0.02 {
		t.Errorf("warmup tail %.3f no better than chance", tail)
	}
}

func TestSearchImprovesOverWarmupAndCommitsPolicy(t *testing.T) {
	cfg := tinyConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	warm := s.WarmupCurve.TailMean(10)
	searched := s.SearchCurve.TailMean(10)
	if searched <= warm {
		t.Errorf("search tail %.3f <= warmup tail %.3f", searched, warm)
	}
	if s.EntropyCurve.Last() >= math.Log(float64(nas.NumOps)) {
		t.Errorf("entropy %.5f did not decrease from ln(8)", s.EntropyCurve.Last())
	}
	if s.BaselineCurve.Last() <= 0 {
		t.Error("baseline never updated")
	}
}

func TestDeriveProducesValidGenotype(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 3
	cfg.SearchSteps = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	g := s.Derive()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.GatesFor(nas.AllOps); err != nil {
		t.Fatal(err)
	}
}

// Fig. 5's ablation: updating α with θ frozen must stall well below the
// jointly optimized search.
func TestAlphaOnlyStallsBelowJoint(t *testing.T) {
	joint := tinyConfig()
	s1, err := New(joint)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}

	frozen := tinyConfig()
	frozen.AlphaOnly = true
	s2, err := New(frozen)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}

	jointTail := s1.SearchCurve.TailMean(10)
	frozenTail := s2.SearchCurve.TailMean(10)
	if jointTail <= frozenTail {
		t.Errorf("joint %.3f <= alpha-only %.3f; Fig. 5 shape violated", jointTail, frozenTail)
	}
}

func TestSearchDeterministic(t *testing.T) {
	run := func(seed int64) []float64 {
		cfg := tinyConfig()
		cfg.Seed = seed
		cfg.WarmupSteps = 4
		cfg.SearchSteps = 6
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Warmup(); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return append(s.WarmupCurve.Values(), s.SearchCurve.Values()...)
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: %v vs %v (nondeterministic)", i, a[i], b[i])
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestStalenessStrategiesRun(t *testing.T) {
	for _, strat := range []staleness.Strategy{staleness.Hard, staleness.Use, staleness.Throw, staleness.DC} {
		cfg := tinyConfig()
		cfg.WarmupSteps = 3
		cfg.SearchSteps = 8
		cfg.Staleness = staleness.Severe()
		cfg.Strategy = strat
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := s.Warmup(); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if s.SearchCurve.Len() != 8 {
			t.Errorf("%v: curve has %d points", strat, s.SearchCurve.Len())
		}
		if len(s.RoundSeconds) != 11 {
			t.Errorf("%v: %d round timings", strat, len(s.RoundSeconds))
		}
	}
}

func TestNonIIDSearchRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Partition = Dirichlet
	cfg.DirichletAlpha = 0.5
	cfg.WarmupSteps = 3
	cfg.SearchSteps = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Shard sizes must be uneven under Dirichlet (with overwhelming
	// probability at this seed).
	sizes := make(map[int]bool)
	for _, p := range s.Participants() {
		sizes[p.NumSamples] = true
	}
	if len(sizes) < 2 {
		t.Error("Dirichlet shards suspiciously uniform")
	}
}

func TestSnapshotRestoreTheta(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 2
	cfg.SearchSteps = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotTheta()
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	moved := s.SnapshotTheta()
	diff := 0.0
	for i := range snap {
		diff += snap[i].Sub(moved[i]).L2Norm()
	}
	if diff == 0 {
		t.Fatal("warmup did not move weights")
	}
	if err := s.RestoreTheta(snap); err != nil {
		t.Fatal(err)
	}
	back := s.SnapshotTheta()
	for i := range snap {
		if !back[i].AllClose(snap[i], 0) {
			t.Fatal("restore did not recover snapshot")
		}
	}
}

func TestSpeedFactorsScaleSearchTime(t *testing.T) {
	run := func(factor float64) float64 {
		cfg := tinyConfig()
		cfg.WarmupSteps = 0
		cfg.SearchSteps = 5
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetSpeedFactors(factor); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.TotalSeconds()
	}
	fast, slow := run(1), run(4)
	if slow <= fast {
		t.Errorf("slow device total %.3f <= fast %.3f", slow, fast)
	}
	// Compute dominates at default bandwidth, so the ratio should approach 4.
	if ratio := slow / fast; ratio < 1.5 {
		t.Errorf("speed-factor ratio %.2f too small", ratio)
	}
}

func TestSetSpeedFactorsValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSpeedFactors(1, 2); err == nil {
		t.Error("expected error for wrong factor count")
	}
	if err := s.SetSpeedFactors(1, 2, 3, 4); err != nil {
		t.Errorf("per-participant factors rejected: %v", err)
	}
}

func TestAttachTracesToSearch(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := nettrace.Environment{Name: "train", Regimes: []nettrace.Regime{nettrace.Train}}
	traces, err := env.ParticipantTraces(cfg.K, 10, s.rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachTraces(traces); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.TotalSeconds() <= 0 {
		t.Error("no virtual time accumulated")
	}
}

func TestSubModelSmallerThanSupernet(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.MeanSubModelBytes() <= 0 {
		t.Fatal("no sub-model sizes recorded")
	}
	// Compare like with like: shipped sub-model frames vs the full
	// supernet under the same wire mode.
	if s.MeanSubModelBytes() >= s.Supernet().SupernetWireBytes(cfg.Wire) {
		t.Error("sub-model not smaller than supernet")
	}
}

func TestRetrainCentralized(t *testing.T) {
	cfg := tinyConfig()
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	geno := nas.Genotype{
		Normal: []nas.OpKind{nas.OpSepConv3, nas.OpIdentity},
		Reduce: []nas.OpKind{nas.OpMaxPool3, nas.OpSepConv3},
		Nodes:  1,
	}
	rcfg := DefaultRetrainConfig()
	rcfg.Steps = 60
	rcfg.BatchSize = 16
	res, err := RetrainCentralized(ds, cfg.Net, geno, rcfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc <= 1.0/5 {
		t.Errorf("retrained accuracy %.3f no better than chance", res.TestAcc)
	}
	if math.Abs(res.TestErr-(1-res.TestAcc)) > 1e-12 {
		t.Error("TestErr inconsistent with TestAcc")
	}
	if res.ParamCount <= 0 || res.ParamMB <= 0 {
		t.Error("param accounting missing")
	}
	if res.TrainCurve.Len() != rcfg.Steps {
		t.Errorf("train curve %d points, want %d", res.TrainCurve.Len(), rcfg.Steps)
	}
	bad := rcfg
	bad.Steps = 0
	if _, err := RetrainCentralized(ds, cfg.Net, geno, bad, 7); err == nil {
		t.Error("expected error for invalid retrain config")
	}
}

func TestRetrainFederated(t *testing.T) {
	cfg := tinyConfig()
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	geno := nas.Genotype{
		Normal: []nas.OpKind{nas.OpSepConv3, nas.OpMaxPool3},
		Reduce: []nas.OpKind{nas.OpAvgPool3, nas.OpSepConv3},
		Nodes:  1,
	}
	fcfg := fed.DefaultFedAvgConfig()
	fcfg.Rounds = 10
	fcfg.BatchSize = 8
	res, fedRes, err := RetrainFederated(ds, cfg.Net, geno, Dirichlet, 0.5, 4, fcfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0 || res.TestAcc > 1 {
		t.Errorf("accuracy %v out of range", res.TestAcc)
	}
	if fedRes.TrainAcc.Len() != fcfg.Rounds {
		t.Errorf("federated curve %d points", fedRes.TrainAcc.Len())
	}
	if _, _, err := RetrainFederated(ds, cfg.Net, geno, PartitionKind(9), 0.5, 4, fcfg, 9); err == nil {
		t.Error("expected error for unknown partition kind")
	}
}

func TestRunPipelineEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 5
	cfg.SearchSteps = 10
	rcfg := DefaultRetrainConfig()
	rcfg.Steps = 20
	rcfg.BatchSize = 16
	fcfg := fed.DefaultFedAvgConfig()
	fcfg.Rounds = 5
	fcfg.BatchSize = 8
	res, err := RunPipeline(cfg, PipelineOptions{Centralized: &rcfg, Federated: &fcfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.SearchCurve.Len() != 10 || res.WarmupCurve.Len() != 5 {
		t.Errorf("curves %d/%d", res.WarmupCurve.Len(), res.SearchCurve.Len())
	}
	if res.SearchSeconds <= 0 {
		t.Error("no search time accounted")
	}
	if res.MeanSubModelMB <= 0 || res.SupernetMB <= res.MeanSubModelMB {
		t.Errorf("size accounting: sub %.3f MB supernet %.3f MB", res.MeanSubModelMB, res.SupernetMB)
	}
	if res.Centralized.Model == nil || res.Federated.Model == nil {
		t.Error("P3 models missing")
	}
}

func TestPipelineSkipsOptionalPhases(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 2
	cfg.SearchSteps = 2
	res, err := RunPipeline(cfg, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centralized.Model != nil || res.Federated.Model != nil {
		t.Error("skipped phases produced models")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 0
	if _, err := New(cfg); err == nil {
		t.Error("expected error for invalid config")
	}
}
