package search

import (
	"testing"

	"fedrlnas/internal/staleness"
)

// Alg. 1 lines 34–35: memory pools must retain at most Δ+1 rounds of
// snapshots — the server's extra memory cost is bounded.
func TestMemoryPoolsBoundedByThreshold(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 12
	cfg.Staleness = staleness.Severe() // Δ = 2
	cfg.Strategy = staleness.DC
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	s.Observer = func(RoundReport) {
		if n := s.thetaPool.Len(); n > maxLen {
			maxLen = n
		}
		if s.alphaPool.Len() != s.thetaPool.Len() || s.gatesPool.Len() != s.thetaPool.Len() {
			t.Errorf("pool sizes diverge: θ=%d α=%d g=%d",
				s.thetaPool.Len(), s.alphaPool.Len(), s.gatesPool.Len())
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Observer fires before eviction of the just-finished round, so the
	// pool may momentarily hold Δ+1 entries plus the current one.
	delta := cfg.Staleness.MaxDelay()
	if maxLen > delta+2 {
		t.Errorf("pool grew to %d entries, want <= %d (Δ=%d)", maxLen, delta+2, delta)
	}
}

// With hard synchronization the pools never need history: after eviction
// only the current round's snapshot survives.
func TestHardSyncKeepsSingleSnapshot(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := s.thetaPool.Len(); n > 1 {
		t.Errorf("hard-sync pool retains %d snapshots, want <= 1", n)
	}
}

// Alg. 1 line 32 divides the aggregated gradients by the number of
// contributors M, not by K: with churn the update magnitude must not
// shrink just because fewer participants reported.
func TestAggregationDividesByContributors(t *testing.T) {
	// Two runs with identical data and seeds, one with every participant
	// reporting, one where churn removes some: both must take well-formed
	// (finite, non-exploding) steps. This is a sanity property rather than
	// an exact equality (different contributors see different batches).
	for _, churn := range []float64{0, 0.5} {
		cfg := tinyConfig()
		cfg.WarmupSteps = 0
		cfg.SearchSteps = 10
		cfg.ChurnProb = churn
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for _, p := range s.Supernet().Params() {
			if p.Value.HasNaN() {
				t.Fatalf("churn=%v produced NaN weights", churn)
			}
		}
	}
}
