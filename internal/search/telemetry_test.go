package search

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"fedrlnas/internal/staleness"
	"fedrlnas/internal/telemetry"
)

// TestRoundStatsAccountingAcrossStrategies pins the Fresh/Late/Dropped/
// Offline tallies to Alg. 1's semantics under each staleness strategy with
// churn, and checks the three accounting views agree: per-round Observer
// deltas, the cumulative Stats façade, and the telemetry counters.
func TestRoundStatsAccountingAcrossStrategies(t *testing.T) {
	cases := []struct {
		name     string
		strategy staleness.Strategy
	}{
		{"dc", staleness.DC},
		{"use", staleness.Use},
		{"throw", staleness.Throw},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			cfg.WarmupSteps = 0
			cfg.SearchSteps = 40
			cfg.K = 5
			cfg.Staleness = staleness.Severe()
			cfg.Strategy = tc.strategy
			cfg.ChurnProb = 0.15
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			s.SetTelemetry(nil, reg)
			var perRound []RoundStats
			s.Observer = func(r RoundReport) { perRound = append(perRound, r.Stats) }
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}

			// Observer per-round deltas must sum to the cumulative façade.
			var sum RoundStats
			for _, st := range perRound {
				sum.Fresh += st.Fresh
				sum.Late += st.Late
				sum.Dropped += st.Dropped
				sum.Offline += st.Offline
			}
			if sum != s.Stats {
				t.Errorf("observer sum %+v != cumulative Stats %+v", sum, s.Stats)
			}
			// The façade must mirror the registry-backed counters.
			counters := RoundStats{
				Fresh:   int(reg.Counter("replies_fresh_total", "").Value()),
				Late:    int(reg.Counter("replies_late_total", "").Value()),
				Dropped: int(reg.Counter("replies_dropped_total", "").Value()),
				Offline: int(reg.Counter("participants_offline_total", "").Value()),
			}
			if counters != s.Stats {
				t.Errorf("registry counters %+v != Stats %+v", counters, s.Stats)
			}
			if got := reg.Counter("rounds_total", "").Value(); got != int64(cfg.SearchSteps) {
				t.Errorf("rounds_total = %d, want %d", got, cfg.SearchSteps)
			}
			if reg.Histogram("submodel_bytes", "").N() == 0 {
				t.Error("submodel_bytes histogram never observed a payload")
			}

			// Every participant-round is fresh, late, dropped, offline, or an
			// (uncounted) early-round pool miss — never more than K per round.
			total := sum.Fresh + sum.Late + sum.Dropped + sum.Offline
			if total == 0 || total > cfg.SearchSteps*cfg.K {
				t.Errorf("accounted %d participant-rounds for %d slots", total, cfg.SearchSteps*cfg.K)
			}
			if sum.Fresh == 0 {
				t.Error("no fresh updates in 40 rounds")
			}
			if sum.Offline == 0 {
				t.Error("15% churn over 200 participant-rounds never went offline")
			}
			switch tc.strategy {
			case staleness.Throw:
				// Throw never applies a stale update: everything late is dropped.
				if sum.Late != 0 {
					t.Errorf("Throw applied %d late updates", sum.Late)
				}
				if sum.Dropped == 0 {
					t.Error("Throw dropped nothing under severe staleness")
				}
			case staleness.DC, staleness.Use:
				// DC and Use apply within-threshold stale updates.
				if sum.Late == 0 {
					t.Errorf("%s never applied a late update under severe staleness", tc.name)
				}
				// The schedule itself still drops beyond-threshold draws.
				if sum.Dropped == 0 {
					t.Error("schedule never dropped despite a 10% drop rate")
				}
			}
		})
	}
}

// TestRoundStatsHardSyncUnderChurn pins the remaining strategy: hard sync
// never samples delays, so churn is the only loss channel.
func TestRoundStatsHardSyncUnderChurn(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 20
	cfg.Strategy = staleness.Hard
	cfg.ChurnProb = 0.25
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Late != 0 || s.Stats.Dropped != 0 {
		t.Errorf("hard sync produced late=%d dropped=%d", s.Stats.Late, s.Stats.Dropped)
	}
	if s.Stats.Offline == 0 {
		t.Error("25% churn never took a participant offline")
	}
	if s.Stats.Fresh+s.Stats.Offline != cfg.SearchSteps*cfg.K {
		t.Errorf("fresh %d + offline %d != %d participant-rounds",
			s.Stats.Fresh, s.Stats.Offline, cfg.SearchSteps*cfg.K)
	}
}

// TestSearchTraceEvents runs a short search with a tracer attached and
// checks the JSONL stream: valid JSON, one round.start/round.end pair per
// round, and per-participant submodel.sample and tx.assign events.
func TestSearchTraceEvents(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 2
	cfg.SearchSteps = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := telemetry.NewJSONLTracer(&buf)
	s.SetTelemetry(tracer, nil)
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		counts[m["event"].(string)]++
	}
	rounds := cfg.WarmupSteps + cfg.SearchSteps
	if counts[telemetry.EventRoundStart] != rounds || counts[telemetry.EventRoundEnd] != rounds {
		t.Errorf("round.start/end = %d/%d, want %d each",
			counts[telemetry.EventRoundStart], counts[telemetry.EventRoundEnd], rounds)
	}
	if want := rounds * cfg.K; counts[telemetry.EventSubModelSample] != want ||
		counts[telemetry.EventTxAssign] != want {
		t.Errorf("submodel.sample/tx.assign = %d/%d, want %d each",
			counts[telemetry.EventSubModelSample], counts[telemetry.EventTxAssign], want)
	}
	// Hard sync, no churn: every participant-round replies fresh.
	if want := rounds * cfg.K; counts[telemetry.EventReplyFresh] != want {
		t.Errorf("reply.fresh = %d, want %d", counts[telemetry.EventReplyFresh], want)
	}
	// α only updates during the search phase.
	if counts[telemetry.EventAlphaUpdate] != cfg.SearchSteps {
		t.Errorf("alpha.update = %d, want %d", counts[telemetry.EventAlphaUpdate], cfg.SearchSteps)
	}
}

// TestDisabledTelemetryHotPathAllocFree asserts the acceptance criterion
// that a search without attached telemetry performs zero telemetry
// allocations on the hot path: the exact tracer/metric call sequence
// runRound issues per participant and per round must not allocate.
func TestDisabledTelemetryHotPathAllocFree(t *testing.T) {
	s, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.tracer.RoundStart(0)
		s.tracer.SubModelSample(0, 1, 4096)
		s.met.SubModelBytes.Observe(4096)
		s.tracer.TxAssign(0, 1, 4096, 0.1)
		s.met.Offline.Inc()
		s.tracer.ReplyOffline(0, 2)
		s.met.RepliesDropped.Inc()
		s.tracer.ReplyDropped(0, 3, 4)
		s.met.RepliesFresh.Inc()
		s.tracer.ReplyFresh(0, 1)
		s.met.RepliesLate.Inc()
		s.tracer.ReplyLate(0, 0, 1)
		s.tracer.AlphaUpdate(0, 1.2)
		s.met.Rounds.Inc()
		s.met.RoundSeconds.Observe(0.5)
		s.met.Accuracy.Set(0.5)
		s.met.Entropy.Set(1.2)
		s.met.Baseline.Set(0.4)
		s.tracer.RoundEnd(0, 0.5, 0.5)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocated %.1f times per round", allocs)
	}
}
