package search

import (
	"testing"

	"fedrlnas/internal/staleness"
)

// steadyStateAllocs measures the average heap allocations of a search round
// after the engine has reached steady state (replica pre-warm done at
// construction, per-participant scratch touched by a few real rounds).
func steadyStateAllocs(t *testing.T, workers int) float64 {
	t.Helper()
	cfg := tinyConfig()
	cfg.K = 8
	cfg.Workers = workers
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 1
	cfg.Strategy = staleness.Hard // no stale branches: every round is shape-identical
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.runRound(true, true); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(10, func() {
		if _, err := s.runRound(true, true); err != nil {
			t.Error(err)
		}
	})
}

// The parallel engine must not allocate per (replica, edge, candidate) after
// construction: replicas are pre-warmed, so a steady-state round at
// workers=4 costs at most the pool's fixed dispatch overhead (goroutines,
// error slice) over the serial engine. Before replica pre-warm this was a
// coupon-collector process — first-touch buffer allocations kept landing on
// the hot path hundreds of rounds into a multi-worker search.
func TestParallelSteadyStateAllocsMatchSerial(t *testing.T) {
	serial := steadyStateAllocs(t, 1)
	par := steadyStateAllocs(t, 4)
	t.Logf("steady-state allocs/round: workers=1 %.0f, workers=4 %.0f", serial, par)
	// Fixed dispatch overhead at workers=4: 4 worker goroutines + closure +
	// error slice + waitgroup internals per round. 60 is far below the
	// hundreds of first-touch tensor allocations the regression produced,
	// while leaving headroom over the ~10 actually observed.
	const dispatchBudget = 60
	if par > serial+dispatchBudget {
		t.Errorf("workers=4 allocates %.0f/round vs %.0f serial (budget +%d): replica buffers are not pre-warmed",
			par, serial, dispatchBudget)
	}
}
