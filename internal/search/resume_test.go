package search

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// stepRounds advances s by n rounds through StepRound, failing the test on
// any error or premature completion.
func stepRounds(t *testing.T, s *Search, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		info, err := s.StepRound()
		if err != nil {
			t.Fatal(err)
		}
		if info.Done && s.Round() < s.TotalRounds() {
			t.Fatalf("schedule reported done at round %d of %d", s.Round(), s.TotalRounds())
		}
	}
}

// requireBitIdentical asserts two searches agree exactly on θ, α, the
// controller baseline, the round counter, and the derived genotype.
func requireBitIdentical(t *testing.T, a, b *Search) {
	t.Helper()
	if a.Round() != b.Round() {
		t.Fatalf("rounds differ: %d vs %d", a.Round(), b.Round())
	}
	ta, tb := a.SnapshotTheta(), b.SnapshotTheta()
	for i := range ta {
		if !ta[i].AllClose(tb[i], 0) {
			t.Fatalf("theta tensor %d differs (resume is not bit-exact)", i)
		}
	}
	if a.Controller().Snapshot().Diff(b.Controller().Snapshot()).L2Norm() != 0 {
		t.Fatal("alpha differs")
	}
	if a.Controller().Baseline() != b.Controller().Baseline() {
		t.Fatalf("baseline differs: %v vs %v", a.Controller().Baseline(), b.Controller().Baseline())
	}
	if a.Derive().String() != b.Derive().String() {
		t.Fatal("derived genotypes differ")
	}
}

// TestResumeReproducesUninterruptedRun is the checkpoint system's core
// guarantee: N rounds + save + fresh process + load + N more rounds must be
// bit-identical to 2N uninterrupted rounds. That only holds because v2
// checkpoints carry the θ momentum buffers, the search RNG position, and
// every materialized participant's RNG position and batcher order — drop
// any one and the runs diverge within a round or two.
func TestResumeReproducesUninterruptedRun(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"full population", func(cfg *Config) {}},
		{"cohort sampling with churn", func(cfg *Config) {
			cfg.K = 8
			cfg.CohortSize = 3
			cfg.ChurnProb = 0.3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			cfg.WarmupSteps = 3
			cfg.SearchSteps = 7
			tc.mut(&cfg)

			uninterrupted, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stepRounds(t, uninterrupted, 10)

			// The interrupted run: half the schedule, checkpoint, then a
			// brand-new Search (a "fresh process") finishes from the file.
			// The split lands mid-warmup→search transition on purpose.
			first, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stepRounds(t, first, 5)
			path := filepath.Join(t.TempDir(), "mid.ckpt")
			if err := first.SaveCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			resumed, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.LoadCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			stepRounds(t, resumed, 5)

			requireBitIdentical(t, uninterrupted, resumed)
		})
	}
}

// TestRunContextCheckpointsOnCancel pins the drain path: a cancelled
// RunContext writes a checkpoint before returning, and a run resumed from
// that checkpoint matches the uninterrupted run exactly.
func TestRunContextCheckpointsOnCancel(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 2
	cfg.SearchSteps = 6

	uninterrupted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepRounds(t, uninterrupted, 8)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepRounds(t, s, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: RunContext must checkpoint and bail
	path := filepath.Join(t.TempDir(), "drain.ckpt")
	if err := s.RunContext(ctx, path, 0); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}

	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if resumed.Round() != 3 {
		t.Fatalf("drain checkpoint at round %d, want 3", resumed.Round())
	}
	if err := resumed.RunContext(context.Background(), "", 0); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, uninterrupted, resumed)
}

// TestStepRoundMatchesWarmupRun pins StepRound against the legacy phase
// methods: stepping the whole schedule must equal Warmup()+Run() bit for
// bit and record the same curves.
func TestStepRoundMatchesWarmupRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 2
	cfg.SearchSteps = 4

	legacy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Run(); err != nil {
		t.Fatal(err)
	}

	stepped, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		info, err := stepped.StepRound()
		if err != nil {
			t.Fatal(err)
		}
		if info.Done {
			break
		}
	}
	requireBitIdentical(t, legacy, stepped)
	if stepped.WarmupCurve.Len() != legacy.WarmupCurve.Len() ||
		stepped.SearchCurve.Len() != legacy.SearchCurve.Len() {
		t.Fatalf("curves: warmup %d/%d search %d/%d",
			stepped.WarmupCurve.Len(), legacy.WarmupCurve.Len(),
			stepped.SearchCurve.Len(), legacy.SearchCurve.Len())
	}
	// A completed schedule steps as a Done no-op.
	info, err := stepped.StepRound()
	if err != nil || !info.Done {
		t.Fatalf("StepRound after completion = (%+v, %v), want Done", info, err)
	}
}

// TestCheckpointSurvivesKill9 kills a checkpoint-writing child process with
// SIGKILL mid-stream and verifies the surviving file is always a complete,
// loadable checkpoint — the atomic temp-file + rename + fsync protocol's
// whole point. The child is this test binary re-executed with
// FEDRLNAS_CKPT_CHILD set (see TestCheckpointKillChild).
func TestCheckpointSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "victim.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run=TestCheckpointKillChild", "-test.v")
	cmd.Env = append(os.Environ(), "FEDRLNAS_CKPT_CHILD="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	defer cmd.Wait()

	// Wait until the child has produced at least one complete checkpoint.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never produced a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let it overwrite the file a few more times, then kill it mid-write.
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	s, err := New(killChildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCheckpoint(path); err != nil {
		t.Fatalf("checkpoint torn by SIGKILL: %v", err)
	}
}

// killChildConfig is the config shared by TestCheckpointSurvivesKill9 and
// its re-exec child; the two processes must build identical searches.
func killChildConfig() Config {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 0
	return cfg
}

// TestCheckpointKillChild is the re-exec helper for
// TestCheckpointSurvivesKill9: it saves checkpoints in a tight loop until
// killed. It is a no-op unless FEDRLNAS_CKPT_CHILD is set.
func TestCheckpointKillChild(t *testing.T) {
	path := os.Getenv("FEDRLNAS_CKPT_CHILD")
	if path == "" {
		t.Skip("not in child mode")
	}
	s, err := New(killChildConfig())
	if err != nil {
		t.Fatal(err)
	}
	for {
		if err := s.SaveCheckpoint(path); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumeFromWarmupBoundary pins the warmup-phase checkpoint path: a
// checkpoint saved before any search round has run carries a zero baseline
// with the bootstrap still pending, and restoring it must NOT mark the
// moving average as seeded — otherwise the first resumed search round
// subtracts a baseline the uninterrupted run never had and the runs diverge
// immediately.
func TestResumeFromWarmupBoundary(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 5
	cfg.SearchSteps = 8
	cfg.Seed = 23

	uninterrupted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepRounds(t, uninterrupted, 13)

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepRounds(t, first, 5) // exactly the warmup/search boundary
	path := filepath.Join(t.TempDir(), "boundary.ckpt")
	if err := first.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	stepRounds(t, resumed, 8)

	requireBitIdentical(t, uninterrupted, resumed)
}
