package parallel

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestShardRangesPartition(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []Range
	}{
		{0, 4, nil},
		{-1, 4, nil},
		{5, 0, []Range{{0, 5}}},
		{5, 1, []Range{{0, 5}}},
		{6, 2, []Range{{0, 3}, {3, 6}}},
		{7, 2, []Range{{0, 4}, {4, 7}}},
		{7, 3, []Range{{0, 3}, {3, 5}, {5, 7}}},
		{3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}}, // more shards than items
		{1, 4, []Range{{0, 1}}},
	}
	for _, c := range cases {
		got := ShardRanges(c.n, c.shards)
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ShardRanges(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
		}
	}
}

// Exhaustive structural check: ranges must exactly tile [0, n), ascending,
// non-empty, with sizes differing by at most one.
func TestShardRangesTile(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for shards := 1; shards <= 10; shards++ {
			ranges := ShardRanges(n, shards)
			lo, minLen, maxLen := 0, n+1, 0
			for _, r := range ranges {
				if r.Lo != lo || r.Hi <= r.Lo {
					t.Fatalf("n=%d shards=%d: bad range %v after lo=%d", n, shards, r, lo)
				}
				if l := r.Len(); l < minLen {
					minLen = l
				}
				if l := r.Len(); l > maxLen {
					maxLen = l
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("n=%d shards=%d: ranges end at %d", n, shards, lo)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("n=%d shards=%d: unbalanced ranges %v", n, shards, ranges)
			}
		}
	}
}

// A sharded sum over fixed per-index inputs must be bit-identical to the
// sequential sum at every shard count, because each destination index is
// owned by exactly one shard and accumulated in the same order.
func TestRunShardsBitIdenticalSum(t *testing.T) {
	const n = 1003
	const replies = 7
	// Adversarial float inputs: wide magnitude spread so any reordering
	// of additions would change the rounding.
	in := make([][]float64, replies)
	for rep := range in {
		in[rep] = make([]float64, n)
		for i := range in[rep] {
			in[rep][i] = float64((rep+1)*(i+1)) * 1e-3 * float64(uint64(1)<<(uint(i)%40))
		}
	}
	sum := func(shards, workers int) []float64 {
		out := make([]float64, n)
		p := New(workers)
		if err := p.RunShards(n, shards, func(_ int, r Range) error {
			for rep := 0; rep < replies; rep++ {
				for i := r.Lo; i < r.Hi; i++ {
					out[i] += in[rep][i]
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := sum(1, 1)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2, 4} {
			got := sum(shards, workers)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("shards=%d workers=%d differs from reference", shards, workers)
			}
		}
	}
}

func TestRunShardsCoversEveryIndexOnce(t *testing.T) {
	const n = 57
	var touched [n]atomic.Int32
	p := New(4)
	if err := p.RunShards(n, 4, func(_ int, r Range) error {
		for i := r.Lo; i < r.Hi; i++ {
			touched[i].Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range touched {
		if got := touched[i].Load(); got != 1 {
			t.Fatalf("index %d touched %d times", i, got)
		}
	}
}

func TestRunShardsErrorAndPanic(t *testing.T) {
	p := New(2)
	sentinel := errors.New("boom")
	err := p.RunShards(10, 4, func(shard int, _ Range) error {
		if shard == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	err = p.RunShards(10, 4, func(shard int, _ Range) error {
		if shard == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestRunShardsNilPool(t *testing.T) {
	var p *Pool
	total := 0
	if err := p.RunShards(9, 3, func(_ int, r Range) error {
		total += r.Len()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 9 {
		t.Fatalf("nil pool covered %d of 9", total)
	}
}
