// Package parallel provides the shared worker-pool execution layer that
// drives all per-round participant work in the federated search engine.
//
// The pool is deliberately minimal: Run(n, fn) partitions n independent
// tasks across a fixed number of workers and blocks until every task has
// finished. Each invocation of fn receives both the worker slot (0 ≤
// worker < Workers()) and the task index (0 ≤ task < n). The worker slot
// is the key to deterministic parallelism throughout the repo: callers
// allocate one set of mutable scratch state (model replica, gradient
// buffers) per worker slot, so a task owns its slot's state exclusively
// for the duration of fn and no locking is needed inside the hot path.
//
// Determinism contract: Run makes no guarantee about the order tasks
// execute in, so callers must keep per-task results in per-task (or
// per-worker) storage and merge them sequentially in task-index order
// after Run returns. With that discipline the merged result is
// bit-identical for every worker count, including workers=1.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fedrlnas/internal/telemetry"
)

// Pool executes batches of independent tasks on a fixed set of workers.
// A nil *Pool is valid and runs everything inline on the calling
// goroutine (workers = 1).
type Pool struct {
	workers int

	// Optional telemetry, attached via Observe. All handles are nil-safe.
	tasks       *telemetry.Counter   // parallel_tasks_total
	queueWait   *telemetry.Counter   // parallel_queue_wait_nanoseconds_total
	taskSeconds *telemetry.Histogram // participant_step_seconds
}

// New returns a pool with the given number of workers. workers <= 0
// selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers reports the concurrency level tasks may run at. A nil pool is
// sequential.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Observe attaches pool metrics to reg: a parallel_workers gauge, the
// parallel_tasks_total counter, the parallel_queue_wait_nanoseconds_total
// counter (cumulative time between Run being called and each task
// starting, i.e. how long work sat waiting for a worker slot), and the
// participant_step_seconds histogram of per-task wall time. A nil pool or
// nil registry is a no-op.
func (p *Pool) Observe(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.Gauge("parallel_workers", "worker-pool concurrency level").Set(float64(p.Workers()))
	p.tasks = reg.Counter("parallel_tasks_total", "tasks executed by the worker pool")
	p.queueWait = reg.Counter("parallel_queue_wait_nanoseconds_total", "cumulative time tasks waited for a worker slot")
	p.taskSeconds = reg.Histogram("participant_step_seconds", "per-participant local step wall time in seconds")
}

// observed reports whether any metric handle is attached, so the
// unobserved hot path stays free of time.Now calls.
func (p *Pool) observed() bool {
	return p != nil && (p.tasks != nil || p.queueWait != nil || p.taskSeconds != nil)
}

// Run executes fn(worker, task) for every task in [0, n). Tasks are
// claimed from a shared atomic counter, so at most Workers() invocations
// run concurrently and each worker slot is used by one goroutine at a
// time. Run blocks until all tasks finish and returns the first error in
// task-index order (remaining tasks still run, so partial state stays
// well-defined for callers that merge afterwards).
func (p *Pool) Run(n int, fn func(worker, task int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline fast path: no goroutines, no synchronization.
		var firstErr error
		for task := 0; task < n; task++ {
			start := p.startTask()
			err := runTask(fn, 0, task)
			p.endTask(start)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		errs = make([]error, n)
	)
	enqueued := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				task := int(next.Add(1)) - 1
				if task >= n {
					return
				}
				if p.queueWait != nil {
					p.queueWait.Add(time.Since(enqueued).Nanoseconds())
				}
				start := p.startTask()
				errs[task] = runTask(fn, worker, task)
				p.endTask(start)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes fn, converting a panic into an error so one bad task
// cannot tear down the whole round (and so behaviour matches at every
// worker count).
func runTask(fn func(worker, task int) error, worker, task int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", task, r)
		}
	}()
	return fn(worker, task)
}

// startTask returns the task start time when metrics are attached
// (zero otherwise, keeping the unobserved path clock-free).
func (p *Pool) startTask() time.Time {
	if !p.observed() {
		return time.Time{}
	}
	return time.Now()
}

// endTask records task completion metrics.
func (p *Pool) endTask(start time.Time) {
	if !p.observed() {
		return
	}
	p.tasks.Inc()
	if p.taskSeconds != nil && !start.IsZero() {
		p.taskSeconds.Observe(time.Since(start).Seconds())
	}
}
