package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"fedrlnas/internal/telemetry"
)

func TestWorkersDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.NumCPU() {
		t.Fatalf("New(0).Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := New(-3).Workers(); got != runtime.NumCPU() {
		t.Fatalf("New(-3).Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		const n = 257
		var hits [n]atomic.Int64
		if err := p.Run(n, func(worker, task int) error {
			if worker < 0 || worker >= workers {
				return fmt.Errorf("worker %d out of range [0,%d)", worker, workers)
			}
			hits[task].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: Run: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunNilPoolIsSequential(t *testing.T) {
	var p *Pool
	order := make([]int, 0, 8)
	if err := p.Run(8, func(worker, task int) error {
		if worker != 0 {
			t.Fatalf("nil pool used worker %d", worker)
		}
		order = append(order, task)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range order {
		if task != i {
			t.Fatalf("nil pool ran tasks out of order: %v", order)
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := New(4).Run(0, func(worker, task int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWorkerSlotExclusive verifies the core safety contract: two tasks
// never run concurrently on the same worker slot, so per-worker scratch
// state (model replicas, gradient buffers) needs no locking.
func TestRunWorkerSlotExclusive(t *testing.T) {
	const workers, n = 4, 400
	p := New(workers)
	var busy [workers]atomic.Int64
	err := p.Run(n, func(worker, task int) error {
		if busy[worker].Add(1) != 1 {
			return fmt.Errorf("worker slot %d entered concurrently", worker)
		}
		defer busy[worker].Add(-1)
		// Touch some per-worker state to give the race detector a target.
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorInTaskOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := New(workers).Run(10, func(worker, task int) error {
			ran.Add(1)
			switch task {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want first-by-index %v", workers, err, errA)
		}
		if got := ran.Load(); got != 10 {
			t.Fatalf("workers=%d: only %d/10 tasks ran after error", workers, got)
		}
	}
}

func TestRunRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := New(workers).Run(5, func(worker, task int) error {
			if task == 2 {
				panic("boom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 2 panicked") {
			t.Fatalf("workers=%d: err = %v, want task-2 panic error", workers, err)
		}
	}
}

func TestObserveMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(3)
	p.Observe(reg)
	if got := reg.Gauge("parallel_workers", "").Value(); got != 3 {
		t.Fatalf("parallel_workers = %g, want 3", got)
	}
	const n = 12
	if err := p.Run(n, func(worker, task int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("parallel_tasks_total", "").Value(); got != n {
		t.Fatalf("parallel_tasks_total = %d, want %d", got, n)
	}
	if got := reg.Histogram("participant_step_seconds", "").N(); got != n {
		t.Fatalf("participant_step_seconds N = %d, want %d", got, n)
	}
	if got := reg.Counter("parallel_queue_wait_nanoseconds_total", "").Value(); got < 0 {
		t.Fatalf("queue wait counter = %d, want >= 0", got)
	}
}

func TestObserveNilSafe(t *testing.T) {
	var p *Pool
	p.Observe(telemetry.NewRegistry()) // must not panic
	New(2).Observe(nil)                // must not panic
}
