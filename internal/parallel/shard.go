package parallel

import "fmt"

// Range is a half-open index interval [Lo, Hi) assigned to one shard of a
// sharded merge.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// ShardRanges partitions [0, n) into at most `shards` contiguous,
// non-overlapping, ascending ranges of near-equal length (sizes differ by
// at most one, larger shards first). shards <= 1 yields the single range
// [0, n); n <= 0 yields nil. Empty trailing shards are omitted, so every
// returned range is non-empty.
//
// The contiguous-ascending property is what makes sharded merges safe
// under the repo's bit-identity discipline: when a merge is sharded by
// destination index rather than by source, every accumulator still
// receives its additions in exactly the canonical order, so the result is
// bit-identical at every shard count — including shards=1, which is the
// legacy single-loop merge expressed as one range.
func ShardRanges(n, shards int) []Range {
	if n <= 0 {
		return nil
	}
	if shards <= 1 {
		return []Range{{0, n}}
	}
	if shards > n {
		shards = n
	}
	ranges := make([]Range, 0, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < rem {
			size++
		}
		ranges = append(ranges, Range{lo, lo + size})
		lo += size
	}
	return ranges
}

// RunShards partitions [0, n) into `shards` ranges and executes
// fn(shard, r) for each on the pool, blocking until all complete. Each
// shard owns its index range exclusively, so fn may write destination
// state for indices in r without locking. Errors are reported in shard
// order, matching Run's discipline.
func (p *Pool) RunShards(n, shards int, fn func(shard int, r Range) error) error {
	ranges := ShardRanges(n, shards)
	if len(ranges) == 0 {
		return nil
	}
	if len(ranges) == 1 {
		// Single shard: run inline regardless of pool width.
		if err := runShardTask(fn, 0, ranges[0]); err != nil {
			return fmt.Errorf("parallel: shard 0 %v: %w", ranges[0], err)
		}
		return nil
	}
	err := p.Run(len(ranges), func(_, shard int) error {
		return runShardTask(fn, shard, ranges[shard])
	})
	if err != nil {
		return fmt.Errorf("parallel: sharded run: %w", err)
	}
	return nil
}

func runShardTask(fn func(shard int, r Range) error, shard int, r Range) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("shard %d panicked: %v", shard, rec)
		}
	}()
	return fn(shard, r)
}
