package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Top-k gradient sparsification (tag 4). A sender picks the k
// largest-magnitude coordinates of a tensor and ships only those
// index/value pairs; everything it drops must be folded into an
// error-feedback accumulator by the caller, or the dropped mass is lost
// (internal/rpcfed owns that state on both ends of the transport). The
// frames are deltas: DecodeGroupDelta *adds* top-k entries into a base
// tensor, letting the server and participants keep mirrored weights in
// sync with index/value traffic only.

// TopKCount returns the number of entries a ratio-r top-k selection keeps
// out of n elements: ceil(r·n), clamped to [1, n] (0 only when n == 0).
func TopKCount(n int, ratio float64) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(ratio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// TopKIndices returns the indices of the k largest-magnitude elements of t
// in ascending index order, breaking magnitude ties toward the lower index
// (so the selection is deterministic and platform-independent). idx is
// reused as backing storage when large enough; pass the previous return
// value to make steady-state selection allocation-free. O(n log k) via a
// size-k min-heap of the kept candidates.
func TopKIndices(t []float64, k int, idx []int) []int {
	if k > len(t) {
		k = len(t)
	}
	if k <= 0 {
		return idx[:0]
	}
	if cap(idx) < k {
		idx = make([]int, k)
	} else {
		idx = idx[:k]
	}
	// weaker(a, b): candidate a loses to candidate b — smaller magnitude,
	// or equal magnitude at a higher index. The heap root is the weakest
	// kept candidate, so a scan element replaces it iff the root is weaker.
	weaker := func(a, b int) bool {
		ma, mb := math.Abs(t[a]), math.Abs(t[b])
		if ma != mb {
			return ma < mb
		}
		return a > b
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= k {
				return
			}
			w := l // weakest child
			if r := l + 1; r < k && weaker(idx[r], idx[l]) {
				w = r
			}
			if !weaker(idx[w], idx[i]) {
				return
			}
			idx[i], idx[w] = idx[w], idx[i]
			i = w
		}
	}
	for i := 0; i < k; i++ {
		idx[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for i := k; i < len(t); i++ {
		if weaker(idx[0], i) {
			idx[0] = i
			siftDown(0)
		}
	}
	sort.Ints(idx) // go ≥1.22: slices.Sort, no interface boxing
	return idx
}

// TopKTensorBytes returns the encoded size of one top-k tensor frame with
// k entries (n only sets the header's element count).
func TopKTensorBytes(n, k int) int64 {
	_ = n
	return tensorHeaderBytes + 4 + sparseEntryBytes*int64(k)
}

// AppendGroupHeader starts a tensor-group frame assembled tensor by tensor
// (the top-k encoders emit per tensor because each selection updates
// caller-owned error-feedback state between tensors).
func AppendGroupHeader(dst []byte, tensorCount int) []byte {
	return appendU32(dst, uint32(tensorCount))
}

// AppendTensorTopK appends one top-k tensor frame carrying t's values at
// the given ascending indices. The caller is responsible for folding the
// coordinates NOT in idx into its error-feedback accumulator.
func AppendTensorTopK(dst []byte, t []float64, idx []int) []byte {
	dst = append(dst, tagTopK)
	dst = appendU32(dst, uint32(len(t)))
	dst = appendU32(dst, uint32(len(idx)))
	for _, i := range idx {
		dst = appendU32(dst, uint32(i))
		dst = appendU64(dst, math.Float64bits(t[i]))
	}
	return dst
}

// DecodeGroupDelta decodes a tensor group on top of base, in place: top-k
// tensors (tag 4) ADD their entries into the matching base tensor, every
// other tag replaces it. Tensor counts and element counts must match base
// exactly — a delta against the wrong shape is a protocol error, not a
// resize. A nil base entry means the receiver has no state for that slot:
// a dense tensor is allocated into it (re-establishing the base), while a
// tag-4 delta is rejected — applying increments to state you do not have
// silently corrupts it, and the error lets the sender fall back to a dense
// resync. Returns the number of bytes consumed.
func DecodeGroupDelta(buf []byte, base [][]float64) (int, error) {
	r := NewReader(buf)
	count, err := r.U32()
	if err != nil {
		return 0, err
	}
	if int(count) != len(base) {
		return 0, fmt.Errorf("wire: delta group has %d tensors, base has %d", count, len(base))
	}
	for i, dst := range base {
		save := r.off
		tag, err := r.U8()
		if err != nil {
			return 0, fmt.Errorf("wire: tensor %d: %w", i, err)
		}
		if dst == nil {
			if tag == tagTopK {
				return 0, fmt.Errorf("wire: tensor %d: top-k delta against missing base", i)
			}
			r.off = save
			t, err := decodeTensorInto(r, nil)
			if err != nil {
				return 0, fmt.Errorf("wire: tensor %d: %w", i, err)
			}
			base[i] = t
			continue
		}
		n32, err := r.U32()
		if err != nil {
			return 0, fmt.Errorf("wire: tensor %d: %w", i, err)
		}
		if int(n32) != len(dst) {
			return 0, fmt.Errorf("wire: tensor %d: delta element count %d != base %d", i, n32, len(dst))
		}
		if tag == tagTopK {
			if err := decodeTopKAdd(r, dst); err != nil {
				return 0, fmt.Errorf("wire: tensor %d: %w", i, err)
			}
			continue
		}
		// Replace semantics: rewind and reuse the standard decoder, which
		// fills dst's storage in place (capacities already match).
		r.off = save
		if _, err := decodeTensorInto(r, dst); err != nil {
			return 0, fmt.Errorf("wire: tensor %d: %w", i, err)
		}
	}
	return r.off, nil
}

// decodeTopKAdd reads a tag-4 body (the tag and element count are already
// consumed and validated against dst) and accumulates entries into dst.
func decodeTopKAdd(r *Reader, dst []float64) error {
	k32, err := r.U32()
	if err != nil {
		return err
	}
	k := int(k32)
	if k > len(dst) {
		return fmt.Errorf("top-k count %d exceeds element count %d", k, len(dst))
	}
	if r.Len() < sparseEntryBytes*k {
		return fmt.Errorf("truncated top-k body: need %d bytes, have %d", sparseEntryBytes*k, r.Len())
	}
	prev := -1
	for e := 0; e < k; e++ {
		b, _ := r.take(sparseEntryBytes)
		idx := int(binary.LittleEndian.Uint32(b))
		if idx <= prev || idx >= len(dst) {
			return fmt.Errorf("top-k index %d out of order or out of range [0,%d)", idx, len(dst))
		}
		prev = idx
		dst[idx] += math.Float64frombits(binary.LittleEndian.Uint64(b[4:]))
	}
	return nil
}
