package wire

import "fmt"

// SpanContext is the compact distributed-trace context carried across the
// RPC boundary so worker-side spans can parent under the server's round
// span in one stitched timeline. It lives in this package — the stdlib-only
// leaf under both the codec and the telemetry layer — because the binary
// frame header is its wire format and internal/telemetry stamps it into
// JSONL trace events.
//
// The encoded form is a fixed 24-byte little-endian block:
//
//	u64 traceID      (0 = no trace; a frame never carries a zero context)
//	u64 spanID       (the parent span for work done on behalf of this call)
//	i32 round        (communication round the call belongs to)
//	i32 participant  (destination participant id, -1 when not applicable)
type SpanContext struct {
	// TraceID groups every span of one run (server + all workers).
	TraceID uint64
	// SpanID names the span this context points at — for a dispatched RPC,
	// the server's round span, which worker-side spans adopt as parent.
	SpanID uint64
	// Round is the communication round of the call.
	Round int32
	// Participant is the destination participant id (-1 if none).
	Participant int32
}

// Valid reports whether the context carries a trace (a zero TraceID means
// tracing is off and nothing should be emitted or encoded for it).
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// SpanContextBytes is the encoded size of one SpanContext.
const SpanContextBytes = 24

// AppendSpanContext appends the 24-byte encoding of c to dst.
func AppendSpanContext(dst []byte, c SpanContext) []byte {
	dst = appendU64(dst, c.TraceID)
	dst = appendU64(dst, c.SpanID)
	dst = appendU32(dst, uint32(c.Round))
	dst = appendU32(dst, uint32(c.Participant))
	return dst
}

// DecodeSpanContext reads one SpanContext from r. Like every wire decoder
// it is bounds-checked: truncated input yields an error, never a panic.
func DecodeSpanContext(r *Reader) (SpanContext, error) {
	var c SpanContext
	if r.Len() < SpanContextBytes {
		return c, fmt.Errorf("wire: truncated span context: need %d bytes, have %d", SpanContextBytes, r.Len())
	}
	var err error
	if c.TraceID, err = r.U64(); err != nil {
		return c, err
	}
	if c.SpanID, err = r.U64(); err != nil {
		return c, err
	}
	var v int
	if v, err = r.I32(); err != nil {
		return c, err
	}
	c.Round = int32(v)
	if v, err = r.I32(); err != nil {
		return c, err
	}
	c.Participant = int32(v)
	return c, nil
}
