package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestModeStringParseRoundTrip(t *testing.T) {
	for _, m := range []Mode{Gob, FP64, FP32, Sparse} {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
		if !m.Valid() {
			t.Fatalf("%v.Valid() = false", m)
		}
	}
	if _, err := ParseMode("zstd"); err == nil {
		t.Fatal("ParseMode accepted unknown mode")
	}
	if m, err := ParseMode("binary"); err != nil || m != FP64 {
		t.Fatalf("ParseMode(binary) = %v, %v; want fp64 alias", m, err)
	}
	if Mode(9).Valid() {
		t.Fatal("Mode(9).Valid() = true")
	}
	if FP32.Lossless() || !FP64.Lossless() || !Sparse.Lossless() || !Gob.Lossless() {
		t.Fatal("Lossless flags wrong")
	}
}

// randGroup builds a tensor group with the structure the RPC path ships:
// a mix of dense, mostly-zero, and all-zero tensors, including empty ones
// and awkward values (±0, subnormals, NaN, ±Inf).
func randGroup(rng *rand.Rand) [][]float64 {
	g := make([][]float64, rng.Intn(6))
	for i := range g {
		n := rng.Intn(40)
		tv := make([]float64, n)
		density := rng.Float64()
		for j := range tv {
			if rng.Float64() >= density {
				continue
			}
			switch rng.Intn(8) {
			case 0:
				tv[j] = math.Copysign(0, -1)
			case 1:
				tv[j] = math.NaN()
			case 2:
				tv[j] = math.Inf(1 - 2*rng.Intn(2))
			case 3:
				tv[j] = 5e-324 // smallest subnormal
			default:
				tv[j] = rng.NormFloat64()
			}
		}
		g[i] = tv
	}
	return g
}

// equalBits compares groups by float64 bit pattern, so NaN == NaN and
// -0 != +0 — the lossless modes must preserve exact bits.
func equalBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestGroupRoundTripLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []Mode{FP64, Sparse} {
		for trial := 0; trial < 200; trial++ {
			g := randGroup(rng)
			buf := AppendGroup(nil, m, g)
			if int64(len(buf)) != GroupBytes(m, g) {
				t.Fatalf("%v: GroupBytes = %d, encoded %d bytes", m, GroupBytes(m, g), len(buf))
			}
			dec, n, err := DecodeGroup(buf)
			if err != nil {
				t.Fatalf("%v: decode: %v", m, err)
			}
			if n != len(buf) {
				t.Fatalf("%v: consumed %d of %d bytes", m, n, len(buf))
			}
			want := g
			if m == Sparse {
				want = dropNegZero(g)
			}
			if !equalBits(want, dec) {
				t.Fatalf("%v: round trip altered bits", m)
			}
		}
	}
}

// dropNegZero maps -0 to +0 in exactly the tensors Sparse mode encodes
// via zero skipping (all-zero or index/value tags), mirroring the
// documented caveat; tensors that fall back to dense f64 keep their bits.
func dropNegZero(g [][]float64) [][]float64 {
	out := make([][]float64, len(g))
	for i, tv := range g {
		o := make([]float64, len(tv))
		copy(o, tv)
		nnz := countNonzero(tv)
		if nnz == 0 || sparseSmaller(nnz, len(tv)) {
			for j, v := range o {
				if v == 0 {
					o[j] = 0
				}
			}
		}
		out[i] = o
	}
	return out
}

func TestGroupRoundTripFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		g := randGroup(rng)
		buf := AppendGroup(nil, FP32, g)
		if int64(len(buf)) != GroupBytes(FP32, g) {
			t.Fatalf("GroupBytes = %d, encoded %d bytes", GroupBytes(FP32, g), len(buf))
		}
		dec, _, err := DecodeGroup(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(g) {
			t.Fatalf("group length %d, want %d", len(dec), len(g))
		}
		for i := range g {
			for j, v := range g[i] {
				want := float64(float32(v))
				got := dec[i][j]
				if math.IsNaN(want) && math.IsNaN(got) {
					continue
				}
				if want != got && math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("tensor %d[%d]: got %v, want float32-rounded %v of %v", i, j, got, want, v)
				}
			}
		}
	}
}

func TestDecodeGroupIntoReusesBuffers(t *testing.T) {
	g := [][]float64{{1, 2, 3}, {}, {0, 0, 4}}
	buf := AppendGroup(nil, FP64, g)
	into := [][]float64{make([]float64, 8), make([]float64, 8), make([]float64, 8)}
	p0 := &into[0][0]
	dec, err := DecodeGroupInto(NewReader(buf), into)
	if err != nil {
		t.Fatal(err)
	}
	if !equalBits(g, dec) {
		t.Fatal("decoded values wrong")
	}
	if &dec[0][0] != p0 {
		t.Fatal("DecodeGroupInto did not reuse the provided backing array")
	}
	if testing.AllocsPerRun(50, func() {
		dec, err = DecodeGroupInto(NewReader(buf), dec)
		if err != nil {
			t.Fatal(err)
		}
	}) > 0 {
		t.Fatal("steady-state DecodeGroupInto allocates")
	}
	scratch := buf[:0]
	if testing.AllocsPerRun(50, func() {
		scratch = AppendGroup(scratch[:0], FP64, g)
	}) > 0 {
		t.Fatal("steady-state AppendGroup allocates")
	}
}

// TestGoldenFrame freezes the frame format: any change to tags, header
// widths, or endianness must show up here as a deliberate golden update.
func TestGoldenFrame(t *testing.T) {
	group := [][]float64{
		{1.5, -2.0},  // dense under all modes
		{0, 0, 0, 0}, // all-zero: tag 2 under Sparse
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3.25}, // sparse wins: 1 nnz of 13
	}
	le := binary.LittleEndian
	u32 := func(v uint32) []byte { b := make([]byte, 4); le.PutUint32(b, v); return b }
	f64 := func(v float64) []byte { b := make([]byte, 8); le.PutUint64(b, math.Float64bits(v)); return b }
	f32 := func(v float32) []byte { b := make([]byte, 4); le.PutUint32(b, math.Float32bits(v)); return b }
	cat := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }

	golden := map[Mode][]byte{
		FP64: cat(
			u32(3),
			[]byte{tagDenseF64}, u32(2), f64(1.5), f64(-2.0),
			[]byte{tagDenseF64}, u32(4), f64(0), f64(0), f64(0), f64(0),
			[]byte{tagDenseF64}, u32(13), f64(0), f64(0), f64(0), f64(0), f64(0), f64(0),
			f64(0), f64(0), f64(0), f64(0), f64(0), f64(0), f64(3.25),
		),
		FP32: cat(
			u32(3),
			[]byte{tagDenseF32}, u32(2), f32(1.5), f32(-2.0),
			[]byte{tagDenseF32}, u32(4), f32(0), f32(0), f32(0), f32(0),
			[]byte{tagDenseF32}, u32(13), f32(0), f32(0), f32(0), f32(0), f32(0), f32(0),
			f32(0), f32(0), f32(0), f32(0), f32(0), f32(0), f32(3.25),
		),
		Sparse: cat(
			u32(3),
			[]byte{tagDenseF64}, u32(2), f64(1.5), f64(-2.0),
			[]byte{tagAllZero}, u32(4),
			[]byte{tagSparseF64}, u32(13), u32(1), u32(12), f64(3.25),
		),
	}
	for m, want := range golden {
		got := AppendGroup(nil, m, group)
		if !bytes.Equal(got, want) {
			t.Errorf("%v frame drifted from golden bytes:\n got %x\nwant %x", m, got, want)
		}
	}
}

func TestSparsePicksSmallestEncoding(t *testing.T) {
	dense := make([]float64, 10)
	for i := range dense {
		dense[i] = 1
	}
	mostlyZero := make([]float64, 100)
	mostlyZero[3] = 1
	mostlyZero[97] = 2
	group := [][]float64{dense, mostlyZero, make([]float64, 50)}

	buf := AppendGroup(nil, Sparse, group)
	if buf[4] != tagDenseF64 {
		t.Fatalf("fully dense tensor got tag %d, want dense f64", buf[4])
	}
	if int64(len(buf)) != GroupBytes(Sparse, group) {
		t.Fatalf("GroupBytes(Sparse) = %d, encoded %d", GroupBytes(Sparse, group), len(buf))
	}
	fp64Len := GroupBytes(FP64, group)
	if int64(len(buf)) >= fp64Len {
		t.Fatalf("sparse encoding (%d B) not smaller than fp64 (%d B)", len(buf), fp64Len)
	}
}

func TestDenseGroupBytes(t *testing.T) {
	counts := []int{2, 0, 13}
	group := [][]float64{{1, 2}, {}, make([]float64, 13)}
	for _, m := range []Mode{Gob, FP64, FP32, Sparse} {
		want := DenseGroupBytes(m, counts)
		enc := m
		if enc == Gob {
			enc = FP64 // Gob sizes as FP64; encoder never emits gob frames
		}
		got := int64(len(AppendGroup(nil, enc, group)))
		// Sparse on this group is smaller than the dense upper bound.
		if m == Sparse {
			if got > want {
				t.Fatalf("%v: encoded %d exceeds DenseGroupBytes bound %d", m, got, want)
			}
			continue
		}
		if got != want {
			t.Fatalf("%v: DenseGroupBytes = %d, encoded %d", m, want, got)
		}
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	good := AppendGroup(nil, Sparse, [][]float64{{0, 0, 7, 0, 0, 0, 0, 0, 0, 0}, {1, 2}})
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:2],
		"truncated body":   good[:len(good)-3],
		"bad tag":          append(append([]byte{}, good[:4]...), 99, 1, 0, 0, 0),
		"huge count":       {0xff, 0xff, 0xff, 0xff},
		"huge elems":       {1, 0, 0, 0, tagDenseF64, 0xff, 0xff, 0xff, 0x7f},
		"nnz > n":          {1, 0, 0, 0, tagSparseF64, 2, 0, 0, 0, 3, 0, 0, 0},
		"sparse idx range": {1, 0, 0, 0, tagSparseF64, 2, 0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"sparse idx order": cat2(
			[]byte{1, 0, 0, 0, tagSparseF64, 4, 0, 0, 0, 2, 0, 0, 0},
			[]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
			[]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		),
	}
	for name, frame := range cases {
		if _, _, err := DecodeGroup(frame); err == nil {
			t.Errorf("%s: decode accepted corrupt frame", name)
		}
	}
	if _, _, err := DecodeGroup(good); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

func cat2(parts ...[]byte) []byte { return bytes.Join(parts, nil) }

func TestReaderPrimitives(t *testing.T) {
	buf := AppendGroup(nil, FP64, nil)
	buf = appendU64(buf, 0x0102030405060708)
	r := NewReader(buf)
	if _, err := DecodeGroupInto(r, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.U64(); got != 0x0102030405060708 {
		t.Fatalf("U64 = %#x", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after full read", r.Len())
	}
	if _, err := r.U8(); err == nil {
		t.Fatal("U8 past end succeeded")
	}
	if _, err := r.U32(); err == nil {
		t.Fatal("U32 past end succeeded")
	}
	if _, err := r.F64(); err == nil {
		t.Fatal("F64 past end succeeded")
	}
}
