// Package wire is the compact binary tensor codec under the federated RPC
// transport (the paper's communication path, Sec. IV "Adaptive
// transmission"). It replaces per-element gob reflection with hand-rolled
// little-endian frames and gives the transport three payload modes:
//
//	FP64   — dense float64, bit-exact (the default; results are identical
//	         to the gob baseline down to the last bit)
//	FP32   — dense float32, half the bytes, lossy (documented drift)
//	Sparse — per-tensor best-of {all-zero, index/value pairs, dense f64};
//	         lossless (one caveat: negative zero decodes as +0, since zero
//	         skipping tests `v != 0`), and never larger than FP64. Sampled
//	         sub-model gradients compress well here: unsampled ops
//	         contribute all-zero tensors and ReLU gating zeroes long runs.
//	TopK   — top-k magnitude gradient sparsification with error feedback
//	         (lossy by design; the residual rides accumulators on both ends
//	         of the RPC transport, see internal/rpcfed). Only the explicit
//	         AppendTensorTopK/DecodeGroupDelta APIs produce and consume the
//	         lossy frames; AppendGroup under TopK stays lossless.
//
// The package is a leaf (stdlib only): internal/rpcfed builds its net/rpc
// codecs on top of it, internal/transmission call sites use its sizing
// helpers to rank sub-models by measured encoded bytes, and cmd/benchrpc
// measures it against the gob baseline.
//
// # Tensor group frame
//
// A "group" is an ordered list of tensors ([][]float64 on the Go side),
// the Weights/Grads payload of one request or reply. All integers are
// little-endian, all lengths are explicit, and decoding is bounds-checked
// end to end: a malformed frame yields an error, never a panic and never
// an out-of-range allocation.
//
//	u32 tensorCount
//	per tensor:
//	  u8  tag         (0 dense f64 | 1 dense f32 | 2 all-zero | 3 sparse f64
//	                   | 4 top-k delta)
//	  u32 elemCount
//	  tag 0: elemCount × u64   (math.Float64bits)
//	  tag 1: elemCount × u32   (math.Float32bits)
//	  tag 2: nothing
//	  tag 3: u32 nnz, then nnz × (u32 index, u64 bits); indices strictly
//	         ascending and < elemCount
//	  tag 4: same body as tag 3; DecodeGroupDelta adds the entries into a
//	         base tensor (error-feedback gradient deltas, see topk.go)
//
// Tags are per tensor, so a decoder never needs to know the sender's mode;
// the mode only chooses which tags the encoder emits.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mode selects how the sender encodes tensor payloads.
type Mode uint8

// Wire modes. Gob is the net/rpc reflection baseline (no binary framing;
// this package never encodes it) kept for benchmarking; the rest select
// the tags AppendGroup emits.
const (
	Gob Mode = iota
	FP64
	FP32
	Sparse
	// TopK is the gradient-sparsification transport mode (top-k magnitude
	// selection with server/participant error feedback, see
	// internal/rpcfed). The lossy encoding is only produced by the explicit
	// AppendTensorTopK API; AppendGroup under TopK falls back to the
	// lossless Sparse tag selection, so paths that must stay exact (FedAvg
	// control bodies) stay exact even when the transport mode is TopK.
	TopK
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Gob:
		return "gob"
	case FP64:
		return "fp64"
	case FP32:
		return "fp32"
	case Sparse:
		return "sparse"
	case TopK:
		return "topk"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode converts a -wire flag value to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "gob":
		return Gob, nil
	case "fp64", "binary":
		return FP64, nil
	case "fp32":
		return FP32, nil
	case "sparse":
		return Sparse, nil
	case "topk":
		return TopK, nil
	}
	return 0, fmt.Errorf("wire: unknown mode %q (gob|fp64|fp32|sparse|topk)", s)
}

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m <= TopK }

// Lossless reports whether a round trip through m reproduces every float64
// bit-exactly. TopK is lossy at the transport level (dropped coordinates
// ride the error-feedback accumulators instead of the wire), even though
// AppendGroup itself never drops values under it.
func (m Mode) Lossless() bool { return m != FP32 && m != TopK }

// Per-tensor encoding tags.
const (
	tagDenseF64  = 0
	tagDenseF32  = 1
	tagAllZero   = 2
	tagSparseF64 = 3
	// tagTopK shares tagSparseF64's body layout (u32 k, then k ×
	// (u32 index, u64 bits), indices strictly ascending and < elemCount)
	// but carries delta semantics: DecodeGroupDelta adds its entries into
	// the base tensor where a sparse tag would replace. The plain decoders
	// treat it exactly like sparse (zeros elsewhere).
	tagTopK = 4
)

const (
	groupHeaderBytes  = 4 // u32 tensorCount
	tensorHeaderBytes = 5 // u8 tag + u32 elemCount
	sparseEntryBytes  = 12
)

// MaxElems caps the element count a decoder will allocate for a single
// tensor, so a corrupt length prefix cannot demand gigabytes.
const MaxElems = 64 << 20

// appendU32 / appendU64 are the primitive little-endian emitters.
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// DenseTensorBytes returns the encoded size of one dense tensor of n
// elements under m (Sparse sizes as FP64, its lossless upper bound; Gob
// sizes as FP64, the closest analytic estimate of gob's ~9 B/element).
func DenseTensorBytes(m Mode, n int) int64 {
	if m == FP32 {
		return tensorHeaderBytes + 4*int64(n)
	}
	return tensorHeaderBytes + 8*int64(n)
}

// DenseGroupBytes returns the encoded size of a group of dense tensors
// with the given element counts under m — the measured wire size used to
// rank sub-models for adaptive transmission without materializing values.
func DenseGroupBytes(m Mode, elemCounts []int) int64 {
	total := int64(groupHeaderBytes)
	for _, n := range elemCounts {
		total += DenseTensorBytes(m, n)
	}
	return total
}

// GroupBytes returns the exact encoded size of group under m, scanning
// values when the mode is data-dependent (Sparse).
func GroupBytes(m Mode, group [][]float64) int64 {
	if m != Sparse && m != TopK {
		total := int64(groupHeaderBytes)
		for _, t := range group {
			total += DenseTensorBytes(m, len(t))
		}
		return total
	}
	total := int64(groupHeaderBytes)
	for _, t := range group {
		total += int64(tensorHeaderBytes) + sparseBodyBytes(t)
	}
	return total
}

// sparseBodyBytes returns the post-header size tag selection would produce
// for t under Sparse mode.
func sparseBodyBytes(t []float64) int64 {
	nnz := countNonzero(t)
	switch {
	case nnz == 0:
		return 0
	case sparseSmaller(nnz, len(t)):
		return 4 + sparseEntryBytes*int64(nnz)
	default:
		return 8 * int64(len(t))
	}
}

func countNonzero(t []float64) int {
	nnz := 0
	for _, v := range t {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// sparseSmaller reports whether index/value encoding beats dense f64 for
// nnz nonzeros out of n elements (ties go dense: same bytes, cheaper
// decode).
func sparseSmaller(nnz, n int) bool {
	return 4+sparseEntryBytes*int64(nnz) < 8*int64(n)
}

// AppendGroup appends the encoding of group under m to dst and returns the
// extended slice. Callers reuse dst across rounds, so steady-state encoding
// allocates nothing once the buffer has grown to the payload size.
func AppendGroup(dst []byte, m Mode, group [][]float64) []byte {
	dst = appendU32(dst, uint32(len(group)))
	for _, t := range group {
		dst = AppendTensor(dst, m, t)
	}
	return dst
}

// AppendTensor appends one tensor frame under m — the per-tensor body of
// AppendGroup, exposed so callers assembling mixed groups (the top-k
// transport interleaves dense resync tensors with tag-4 deltas) can emit
// tensors one at a time after AppendGroupHeader.
func AppendTensor(dst []byte, m Mode, t []float64) []byte {
	switch m {
	case FP32:
		dst = append(dst, tagDenseF32)
		dst = appendU32(dst, uint32(len(t)))
		for _, v := range t {
			dst = appendU32(dst, math.Float32bits(float32(v)))
		}
	case Sparse, TopK:
		// TopK's lossy encoding only exists behind AppendTensorTopK
		// (callers own the error-feedback state); this encoder stays
		// lossless.
		dst = appendSparse(dst, t)
	default: // FP64 (and Gob callers that reach here by mistake stay lossless)
		dst = append(dst, tagDenseF64)
		dst = appendU32(dst, uint32(len(t)))
		for _, v := range t {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// appendSparse emits one tensor under Sparse mode: all-zero, index/value,
// or dense f64, whichever is smallest.
func appendSparse(dst []byte, t []float64) []byte {
	nnz := countNonzero(t)
	switch {
	case nnz == 0:
		dst = append(dst, tagAllZero)
		return appendU32(dst, uint32(len(t)))
	case sparseSmaller(nnz, len(t)):
		dst = append(dst, tagSparseF64)
		dst = appendU32(dst, uint32(len(t)))
		dst = appendU32(dst, uint32(nnz))
		for i, v := range t {
			if v != 0 {
				dst = appendU32(dst, uint32(i))
				dst = appendU64(dst, math.Float64bits(v))
			}
		}
		return dst
	default:
		dst = append(dst, tagDenseF64)
		dst = appendU32(dst, uint32(len(t)))
		for _, v := range t {
			dst = appendU64(dst, math.Float64bits(v))
		}
		return dst
	}
}

// Reader is a bounds-checked cursor over an encoded frame. Every method
// returns an error instead of panicking on truncated or corrupt input.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// take returns the next n bytes or an error if fewer remain.
func (r *Reader) take(n int) ([]byte, error) {
	if n < 0 || r.Len() < n {
		return nil, fmt.Errorf("wire: truncated frame: need %d bytes, have %d", n, r.Len())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Bytes reads the next n bytes. The returned slice aliases the frame
// buffer; callers that keep it must copy.
func (r *Reader) Bytes(n int) ([]byte, error) { return r.take(n) }

// U16 reads a little-endian uint16.
func (r *Reader) U16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

// I32 reads a little-endian two's-complement int32 widened to int.
func (r *Reader) I32() (int, error) {
	v, err := r.U32()
	return int(int32(v)), err
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// F64 reads a little-endian float64.
func (r *Reader) F64() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// DecodeGroupInto decodes one tensor group from r, reusing into's backing
// storage when shapes allow (the steady-state RPC path decodes into the
// same buffers every round). It returns the decoded group.
func DecodeGroupInto(r *Reader, into [][]float64) ([][]float64, error) {
	count, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int64(count) > int64(r.Len()) { // every tensor costs ≥1 byte
		return nil, fmt.Errorf("wire: tensor count %d exceeds frame size %d", count, r.Len())
	}
	if cap(into) >= int(count) {
		into = into[:count]
	} else {
		into = make([][]float64, count)
	}
	for i := range into {
		t, err := decodeTensorInto(r, into[i])
		if err != nil {
			return nil, fmt.Errorf("wire: tensor %d: %w", i, err)
		}
		into[i] = t
	}
	return into, nil
}

// decodeTensorInto decodes one tensor, reusing buf when it is large enough.
func decodeTensorInto(r *Reader, buf []float64) ([]float64, error) {
	tag, err := r.U8()
	if err != nil {
		return nil, err
	}
	n32, err := r.U32()
	if err != nil {
		return nil, err
	}
	n := int(n32)
	if n > MaxElems {
		return nil, fmt.Errorf("element count %d exceeds limit %d", n, MaxElems)
	}
	// Cheap plausibility check before allocating: dense payloads must fit in
	// what remains of the frame.
	switch tag {
	case tagDenseF64:
		if r.Len() < 8*n {
			return nil, fmt.Errorf("truncated dense f64 body: need %d bytes, have %d", 8*n, r.Len())
		}
	case tagDenseF32:
		if r.Len() < 4*n {
			return nil, fmt.Errorf("truncated dense f32 body: need %d bytes, have %d", 4*n, r.Len())
		}
	}
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = make([]float64, n)
	}
	switch tag {
	case tagDenseF64:
		b, _ := r.take(8 * n)
		for i := range buf {
			buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case tagDenseF32:
		b, _ := r.take(4 * n)
		for i := range buf {
			buf[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
	case tagAllZero:
		for i := range buf {
			buf[i] = 0
		}
	case tagSparseF64, tagTopK:
		nnz32, err := r.U32()
		if err != nil {
			return nil, err
		}
		nnz := int(nnz32)
		if nnz > n {
			return nil, fmt.Errorf("sparse nnz %d exceeds element count %d", nnz, n)
		}
		if r.Len() < sparseEntryBytes*nnz {
			return nil, fmt.Errorf("truncated sparse body: need %d bytes, have %d", sparseEntryBytes*nnz, r.Len())
		}
		for i := range buf {
			buf[i] = 0
		}
		prev := -1
		for e := 0; e < nnz; e++ {
			b, _ := r.take(sparseEntryBytes)
			idx := int(binary.LittleEndian.Uint32(b))
			if idx <= prev || idx >= n {
				return nil, fmt.Errorf("sparse index %d out of order or out of range [0,%d)", idx, n)
			}
			prev = idx
			buf[idx] = math.Float64frombits(binary.LittleEndian.Uint64(b[4:]))
		}
	default:
		return nil, fmt.Errorf("unknown tensor tag %d", tag)
	}
	return buf, nil
}

// DecodeGroup is DecodeGroupInto from a raw buffer without reuse, returning
// the group and the number of bytes consumed.
func DecodeGroup(buf []byte) ([][]float64, int, error) {
	r := NewReader(buf)
	g, err := DecodeGroupInto(r, nil)
	if err != nil {
		return nil, 0, err
	}
	return g, r.off, nil
}
