package wire

import (
	"bytes"
	"testing"
)

func TestSpanContextRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{},
		{TraceID: 1},
		{TraceID: 0xdeadbeefcafebabe, SpanID: 0x0123456789abcdef, Round: 42, Participant: 7},
		{TraceID: ^uint64(0), SpanID: ^uint64(0), Round: -1, Participant: -1},
		{TraceID: 5, SpanID: 0, Round: 1<<31 - 1, Participant: -(1 << 31)},
	}
	for _, c := range cases {
		enc := AppendSpanContext(nil, c)
		if len(enc) != SpanContextBytes {
			t.Fatalf("encoded %d bytes, want %d", len(enc), SpanContextBytes)
		}
		got, err := DecodeSpanContext(NewReader(enc))
		if err != nil {
			t.Fatalf("decode %+v: %v", c, err)
		}
		if got != c {
			t.Errorf("round trip %+v -> %+v", c, got)
		}
	}
}

// TestSpanContextGolden pins the byte layout so cross-version stitching
// keeps working: a header written by one build must parse in another.
func TestSpanContextGolden(t *testing.T) {
	c := SpanContext{
		TraceID:     0x0102030405060708,
		SpanID:      0x1112131415161718,
		Round:       3,
		Participant: -1,
	}
	want := []byte{
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // traceID LE
		0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11, // spanID LE
		0x03, 0x00, 0x00, 0x00, // round
		0xff, 0xff, 0xff, 0xff, // participant -1
	}
	got := AppendSpanContext(nil, c)
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestSpanContextTruncated(t *testing.T) {
	full := AppendSpanContext(nil, SpanContext{TraceID: 9, SpanID: 8, Round: 1, Participant: 2})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeSpanContext(NewReader(full[:n])); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestSpanContextValid(t *testing.T) {
	if (SpanContext{}).Valid() {
		t.Error("zero context must be invalid")
	}
	if (SpanContext{SpanID: 1}).Valid() {
		t.Error("context without trace ID must be invalid")
	}
	if !(SpanContext{TraceID: 1}).Valid() {
		t.Error("context with trace ID must be valid")
	}
}

// FuzzDecodeSpanContext asserts the decoder never panics and that anything
// it accepts re-encodes to the bytes it consumed.
func FuzzDecodeSpanContext(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, SpanContextBytes-1))
	f.Add(AppendSpanContext(nil, SpanContext{TraceID: 1, SpanID: 2, Round: 3, Participant: 4}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		c, err := DecodeSpanContext(r)
		if err != nil {
			return
		}
		if got := AppendSpanContext(nil, c); !bytes.Equal(got, data[:SpanContextBytes]) {
			t.Fatalf("re-encode mismatch: got %x want %x", got, data[:SpanContextBytes])
		}
	})
}
