package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestTopKCount(t *testing.T) {
	cases := []struct {
		n     int
		ratio float64
		want  int
	}{
		{0, 0.1, 0}, {1, 0.1, 1}, {10, 0.1, 1}, {11, 0.1, 2},
		{100, 0.25, 25}, {7, 0.5, 4}, {5, 0, 1}, {5, 2, 5}, {5, 1, 5},
	}
	for _, c := range cases {
		if got := TopKCount(c.n, c.ratio); got != c.want {
			t.Fatalf("TopKCount(%d, %v) = %d, want %d", c.n, c.ratio, got, c.want)
		}
	}
}

func TestTopKIndicesSelection(t *testing.T) {
	// Largest magnitudes win regardless of sign; the result is ascending.
	v := []float64{0.5, -3, 1, 2.5, -0.25, 3}
	got := TopKIndices(v, 3, nil)
	want := []int{1, 3, 5} // |-3|, |2.5|, |3|
	if len(got) != len(want) {
		t.Fatalf("TopKIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKIndices = %v, want %v", got, want)
		}
	}
	// Magnitude ties break toward the lower index.
	tie := []float64{1, -1, 1, -1}
	got = TopKIndices(tie, 2, got)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("tie break: got %v, want [0 1]", got)
	}
	// k clamps to len and 0 selects nothing.
	if got = TopKIndices(tie, 99, got); len(got) != 4 {
		t.Fatalf("k>n: got %d indices, want 4", len(got))
	}
	if got = TopKIndices(tie, 0, got); len(got) != 0 {
		t.Fatalf("k=0: got %d indices, want 0", len(got))
	}
}

// TestTopKRoundTripProperty: decode(encode(x)) under the plain decoder
// yields exactly the k largest-magnitude coordinates (ties toward lower
// index) and zeros elsewhere, for random tensors and random k.
func TestTopKRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var idx []int
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			// Duplicated magnitudes exercise the tie-break.
			v[i] = float64(rng.Intn(9)-4) * 0.5
		}
		k := 0
		if n > 0 {
			k = 1 + rng.Intn(n)
		}
		idx = TopKIndices(v, k, idx)
		frame := AppendTensorTopK(AppendGroupHeader(nil, 1), v, idx)
		got, consumed, err := DecodeGroup(frame)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if consumed != len(frame) || len(got) != 1 || len(got[0]) != n {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		// Reference selection: stable sort by (magnitude desc, index asc).
		want := make([]float64, n)
		ref := TopKIndices(v, k, nil)
		kept := make(map[int]bool, k)
		for _, i := range ref {
			want[i] = v[i]
			kept[i] = true
		}
		minKept := math.Inf(1)
		for _, i := range ref {
			if m := math.Abs(v[i]); m < minKept {
				minKept = m
			}
		}
		for i := range want {
			if math.Float64bits(got[0][i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: coord %d = %g, want %g (v=%v idx=%v)",
					trial, i, got[0][i], want[i], v, idx)
			}
			// Every dropped coordinate must be no larger than every kept one.
			if !kept[i] && k > 0 && math.Abs(v[i]) > minKept {
				t.Fatalf("trial %d: dropped coord %d has |%g| > smallest kept %g",
					trial, i, v[i], minKept)
			}
		}
	}
}

// TestTopKGoldenFrame freezes the tag-4 layout.
func TestTopKGoldenFrame(t *testing.T) {
	le := binary.LittleEndian
	u32 := func(v uint32) []byte { b := make([]byte, 4); le.PutUint32(b, v); return b }
	f64 := func(v float64) []byte { b := make([]byte, 8); le.PutUint64(b, math.Float64bits(v)); return b }
	cat := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }

	v := []float64{0, -4.5, 0.25, 0, 7}
	idx := TopKIndices(v, 2, nil) // -> {1, 4}
	got := AppendTensorTopK(AppendGroupHeader(nil, 1), v, idx)
	want := cat(
		u32(1),
		[]byte{tagTopK}, u32(5), u32(2),
		u32(1), f64(-4.5),
		u32(4), f64(7),
	)
	if !bytes.Equal(got, want) {
		t.Fatalf("top-k frame drifted from golden bytes:\n got %x\nwant %x", got, want)
	}
	if TopKTensorBytes(5, 2) != int64(len(want))-groupHeaderBytes {
		t.Fatalf("TopKTensorBytes(5,2) = %d, want %d", TopKTensorBytes(5, 2), len(want)-groupHeaderBytes)
	}
}

// TestDecodeGroupDelta: top-k tensors accumulate into the base, dense and
// sparse tensors replace it, and shape mismatches are errors.
func TestDecodeGroupDelta(t *testing.T) {
	base := [][]float64{
		{1, 2, 3, 4},
		{10, 20},
		{5, 5, 5},
	}
	// AppendGroup writes its own group header; assemble the replace-tagged
	// tensors by slicing one-tensor groups past their headers.
	one := func(m Mode, t []float64) []byte { return AppendGroup(nil, m, [][]float64{t})[groupHeaderBytes:] }
	delta := AppendGroupHeader(nil, 3)
	delta = AppendTensorTopK(delta, []float64{0.5, 0, 0, -1}, []int{0, 3})
	delta = append(delta, one(FP64, []float64{7, 8})...)
	delta = append(delta, one(Sparse, []float64{0, 0, 0})...)

	consumed, err := DecodeGroupDelta(delta, base)
	if err != nil {
		t.Fatalf("DecodeGroupDelta: %v", err)
	}
	if consumed != len(delta) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(delta))
	}
	wants := [][]float64{{1.5, 2, 3, 3}, {7, 8}, {0, 0, 0}}
	for i, want := range wants {
		for j := range want {
			if base[i][j] != want[j] {
				t.Fatalf("tensor %d = %v, want %v", i, base[i], want)
			}
		}
	}

	// Tensor-count mismatch.
	if _, err := DecodeGroupDelta(delta, base[:2]); err == nil {
		t.Fatal("accepted delta with mismatched tensor count")
	}
	// Element-count mismatch.
	bad := AppendGroupHeader(nil, 1)
	bad = AppendTensorTopK(bad, []float64{1, 2, 3}, []int{0})
	if _, err := DecodeGroupDelta(bad, [][]float64{{1, 2}}); err == nil {
		t.Fatal("accepted delta with mismatched element count")
	}
	// Out-of-order indices.
	corrupt := AppendGroupHeader(nil, 1)
	corrupt = append(corrupt, tagTopK)
	corrupt = appendU32(corrupt, 4)
	corrupt = appendU32(corrupt, 2)
	corrupt = appendU32(corrupt, 2)
	corrupt = appendU64(corrupt, math.Float64bits(1))
	corrupt = appendU32(corrupt, 1) // descends
	corrupt = appendU64(corrupt, math.Float64bits(1))
	if _, err := DecodeGroupDelta(corrupt, [][]float64{{0, 0, 0, 0}}); err == nil {
		t.Fatal("accepted out-of-order top-k indices")
	}
	// Truncated body.
	trunc := AppendGroupHeader(nil, 1)
	trunc = AppendTensorTopK(trunc, []float64{1, 2}, []int{0, 1})
	if _, err := DecodeGroupDelta(trunc[:len(trunc)-3], [][]float64{{0, 0}}); err == nil {
		t.Fatal("accepted truncated top-k frame")
	}
}

// TestTopKModeGroupEncodingLossless: AppendGroup under TopK must stay
// lossless (it is the FedAvg-control-body path), matching Sparse byte for
// byte.
func TestTopKModeGroupEncodingLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		g := randGroup(rng)
		sp := AppendGroup(nil, Sparse, g)
		tk := AppendGroup(nil, TopK, g)
		if !bytes.Equal(sp, tk) {
			t.Fatalf("trial %d: TopK group encoding differs from Sparse", trial)
		}
		if GroupBytes(TopK, g) != int64(len(tk)) {
			t.Fatalf("trial %d: GroupBytes(TopK) = %d, frame is %d", trial, GroupBytes(TopK, g), len(tk))
		}
	}
	if TopK.Lossless() {
		t.Fatal("TopK must report lossy: the transport drops coordinates")
	}
	if m, err := ParseMode("topk"); err != nil || m != TopK {
		t.Fatalf("ParseMode(topk) = %v, %v", m, err)
	}
	if TopK.String() != "topk" || !TopK.Valid() {
		t.Fatalf("TopK stringer/validity wrong: %q %v", TopK, TopK.Valid())
	}
}

func TestTopKSteadyStateAllocs(t *testing.T) {
	v := make([]float64, 256)
	rng := rand.New(rand.NewSource(3))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	idx := TopKIndices(v, 25, nil)
	buf := AppendTensorTopK(AppendGroupHeader(nil, 1), v, idx)
	allocs := testing.AllocsPerRun(50, func() {
		idx = TopKIndices(v, 25, idx)
		buf = AppendTensorTopK(AppendGroupHeader(buf[:0], 1), v, idx)
	})
	if allocs > 0 {
		t.Fatalf("steady-state top-k encode allocated %.1f times per op, want 0", allocs)
	}
}
