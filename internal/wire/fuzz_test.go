package wire

import (
	"math"
	"testing"
)

// FuzzDecodeGroup feeds arbitrary bytes to the decoder. The contract under
// test: malformed frames return an error — they never panic and never
// allocate past MaxElems per tensor. Valid frames (the seeds) must
// re-encode to themselves under the mode that produced them.
func FuzzDecodeGroup(f *testing.F) {
	seedGroups := [][][]float64{
		nil,
		{{}},
		{{1.5, -2.0}, {0, 0, 0, 0}},
		{make([]float64, 64)},
		{{math.NaN(), math.Inf(1), 5e-324, math.Copysign(0, -1)}},
	}
	for _, g := range seedGroups {
		for _, m := range []Mode{FP64, FP32, Sparse} {
			f.Add(AppendGroup(nil, m, g))
		}
		// Top-k frames (tag 4), one tensor per frame with a ~25% selection.
		for _, t := range g {
			k := TopKCount(len(t), 0.25)
			f.Add(AppendTensorTopK(AppendGroupHeader(nil, 1), t, TopKIndices(t, k, nil)))
		}
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 0, 0, 0, tagSparseF64, 8, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, tagTopK, 8, 0, 0, 0, 2, 0, 0, 0})

	f.Fuzz(func(t *testing.T, frame []byte) {
		// The delta decoder must also never panic, whatever the bytes; its
		// base shapes are picked to sometimes match the seeds.
		base := [][]float64{make([]float64, 2), make([]float64, 4)}
		_, _ = DecodeGroupDelta(frame, base)

		g, n, err := DecodeGroup(frame)
		if err != nil {
			return
		}
		if n > len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		// A frame the decoder accepts must survive a lossless re-encode /
		// re-decode cycle (fp32/sparse tags decode to float64, so re-encode
		// under FP64 which represents anything).
		re := AppendGroup(nil, FP64, g)
		g2, _, err := DecodeGroup(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if len(g2) != len(g) {
			t.Fatalf("re-encode changed group length %d -> %d", len(g), len(g2))
		}
		for i := range g {
			if len(g2[i]) != len(g[i]) {
				t.Fatalf("tensor %d length %d -> %d", i, len(g[i]), len(g2[i]))
			}
			for j := range g[i] {
				if math.Float64bits(g2[i][j]) != math.Float64bits(g[i][j]) {
					t.Fatalf("tensor %d[%d] bits changed", i, j)
				}
			}
		}
	})
}
