// Package controller implements the paper's RL search controller: the
// architecture parameter matrix α, the softmax sampling policy (Eq. 4–5),
// the analytic REINFORCE gradient (Eq. 10–12), and the moving-average reward
// baseline (Eq. 8–9).
package controller

import (
	"fmt"
	"math"
	"math/rand"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/tensor"
)

// Config holds the α-optimization hyperparameters (paper Table I).
type Config struct {
	LR            float64 // learning rate (α), default 0.003
	WeightDecay   float64 // weight decay (α), default 0.0001
	GradClip      float64 // gradient clip (α), default 5
	BaselineDecay float64 // β in Eq. 9, default 0.99
	// DisableBaseline turns off the Eq. 8 reward centering (ablation:
	// REINFORCE on raw accuracy).
	DisableBaseline bool
}

// DefaultConfig returns the paper's Table I values for α.
func DefaultConfig() Config {
	return Config{LR: 0.003, WeightDecay: 0.0001, GradClip: 5, BaselineDecay: 0.99}
}

// Controller owns the architecture parameters for the shared normal cell
// and the shared reduction cell.
type Controller struct {
	cfg Config

	alphaNormal [][]float64 // edges × candidates
	alphaReduce [][]float64

	baseline    float64
	baselineSet bool

	// scratch for the sequential server-side sampling paths (SampleGates,
	// LogProb, Entropy); NOT used by the concurrent LogProbGradAt path.
	probsN, probsR [][]float64
}

// New constructs a controller with zero-initialized α (uniform policy).
func New(normalEdges, reduceEdges, numCandidates int, cfg Config) (*Controller, error) {
	if normalEdges <= 0 || reduceEdges <= 0 || numCandidates < 2 {
		return nil, fmt.Errorf("controller: invalid space %dx%d candidates %d",
			normalEdges, reduceEdges, numCandidates)
	}
	return &Controller{
		cfg:         cfg,
		alphaNormal: zeroRows(normalEdges, numCandidates),
		alphaReduce: zeroRows(reduceEdges, numCandidates),
	}, nil
}

// NumCandidates returns the per-edge candidate count.
func (c *Controller) NumCandidates() int { return len(c.alphaNormal[0]) }

// Probs returns the softmax policy per edge (Eq. 4). The returned rows are
// fresh copies.
func (c *Controller) Probs() (normal, reduce [][]float64) {
	return softmaxRows(c.alphaNormal), softmaxRows(c.alphaReduce)
}

// probsScratch computes the policy into the controller's reusable scratch
// rows. Only for the sequential server-side paths; the rows are overwritten
// by the next call.
func (c *Controller) probsScratch() (normal, reduce [][]float64) {
	c.probsN = softmaxRowsInto(c.probsN, c.alphaNormal)
	c.probsR = softmaxRowsInto(c.probsR, c.alphaReduce)
	return c.probsN, c.probsR
}

// SampleGates draws a one-hot architecture from the current policy (Eq. 5).
func (c *Controller) SampleGates(rng *rand.Rand) nas.Gates {
	pn, pr := c.probsScratch()
	return nas.Gates{Normal: sampleRows(rng, pn), Reduce: sampleRows(rng, pr)}
}

// LogProb returns log p(g): the sum over all edges of the log-probability of
// the sampled candidate.
func (c *Controller) LogProb(g nas.Gates) float64 {
	pn, pr := c.probsScratch()
	lp := 0.0
	for e, k := range g.Normal {
		lp += math.Log(pn[e][k])
	}
	for e, k := range g.Reduce {
		lp += math.Log(pr[e][k])
	}
	return lp
}

// LogProbGrad returns ∇α log p(g) analytically (Eq. 12): for the edge where
// candidate i was sampled, the gradient row is (−p₁, …, 1−p_i, …, −p_N).
// (The paper's Eq. 11 prints δ with the cases swapped; δ_ii = 1 is the
// standard Kronecker delta REINFORCE requires, which Eq. 12 also uses.)
func (c *Controller) LogProbGrad(g nas.Gates) AlphaGrad {
	// Read-only view of α; LogProbGradAt writes the softmax straight into
	// the gradient rows, skipping the intermediate probability matrices.
	return LogProbGradAt(AlphaSnapshot{Normal: c.alphaNormal, Reduce: c.alphaReduce}, g)
}

// Reward converts a raw training accuracy into a baselined reward (Eq. 8)
// without updating the baseline. With DisableBaseline set, the raw accuracy
// is returned (the ablation of DESIGN.md §5).
func (c *Controller) Reward(acc float64) float64 {
	if c.cfg.DisableBaseline {
		return acc
	}
	if !c.baselineSet {
		return 0
	}
	return acc - c.baseline
}

// UpdateBaseline folds the round's mean accuracy into the moving-average
// baseline (Eq. 9) and returns the new baseline.
func (c *Controller) UpdateBaseline(meanAcc float64) float64 {
	if !c.baselineSet {
		c.baseline = meanAcc
		c.baselineSet = true
		return c.baseline
	}
	b := c.cfg.BaselineDecay
	c.baseline = b*meanAcc + (1-b)*c.baseline
	return c.baseline
}

// Baseline returns the current moving-average baseline.
func (c *Controller) Baseline() float64 { return c.baseline }

// Apply performs one gradient-ascent step on J(α) with weight decay and
// gradient clipping, mirroring the θ optimizer's safeguards.
func (c *Controller) Apply(grad AlphaGrad) {
	clipRows(c.cfg.GradClip, grad.Normal, grad.Reduce)
	step := func(alpha, g [][]float64) {
		for e := range alpha {
			for j := range alpha[e] {
				alpha[e][j] += c.cfg.LR * (g[e][j] - c.cfg.WeightDecay*alpha[e][j])
			}
		}
	}
	step(c.alphaNormal, grad.Normal)
	step(c.alphaReduce, grad.Reduce)
}

// Entropy returns the mean per-edge policy entropy in nats — a convergence
// diagnostic: it starts at ln(N) and shrinks as the policy commits.
func (c *Controller) Entropy() float64 {
	pn, pr := c.probsScratch()
	total, edges := 0.0, 0
	for _, rows := range [][][]float64{pn, pr} {
		for _, row := range rows {
			for _, p := range row {
				if p > 0 {
					total -= p * math.Log(p)
				}
			}
			edges++
		}
	}
	return total / float64(edges)
}

// View returns a zero-copy read-only view of the current α matrices. Unlike
// Snapshot, the rows alias the live state: callers may only read them, and
// the next Apply/Restore changes them in place. Intended for round engines
// that never consult stale snapshots and want to skip the deep copy.
func (c *Controller) View() AlphaSnapshot {
	return AlphaSnapshot{Normal: c.alphaNormal, Reduce: c.alphaReduce}
}

// Snapshot deep-copies the current α matrices (for staleness memory pools).
func (c *Controller) Snapshot() AlphaSnapshot {
	return AlphaSnapshot{
		Normal: copyRows(c.alphaNormal),
		Reduce: copyRows(c.alphaReduce),
	}
}

// Restore overwrites α with a snapshot.
func (c *Controller) Restore(s AlphaSnapshot) error {
	if len(s.Normal) != len(c.alphaNormal) || len(s.Reduce) != len(c.alphaReduce) {
		return fmt.Errorf("controller: snapshot shape mismatch")
	}
	c.alphaNormal = copyRows(s.Normal)
	c.alphaReduce = copyRows(s.Reduce)
	return nil
}

// Derive returns the argmax genotype under the current policy.
func (c *Controller) Derive(candidates []nas.OpKind, nodes int) nas.Genotype {
	pn, pr := c.Probs()
	return nas.DeriveGenotype(pn, pr, candidates, nodes)
}

// AlphaSnapshot is a deep copy of the α matrices at some round.
type AlphaSnapshot struct {
	Normal [][]float64
	Reduce [][]float64
}

// Diff returns (other − s) elementwise, the Δα the delay-compensation
// correction needs (Eq. 15's α_{t+τ} − α_t).
func (s AlphaSnapshot) Diff(other AlphaSnapshot) AlphaGrad {
	d := AlphaGrad{Normal: copyRows(other.Normal), Reduce: copyRows(other.Reduce)}
	subRows(d.Normal, s.Normal)
	subRows(d.Reduce, s.Reduce)
	return d
}

// LogProbGradAt evaluates ∇α log p(g) at an arbitrary α snapshot (Eq. 12
// applied to stale α, needed by the delay-compensation path of Alg. 1
// line 28 where the straggler's gates were sampled from a past policy).
func LogProbGradAt(s AlphaSnapshot, g nas.Gates) AlphaGrad {
	var grad AlphaGrad
	LogProbGradAtInto(&grad, s, g)
	return grad
}

// LogProbGradAtInto is LogProbGradAt into a caller-owned gradient, reusing
// dst's rows when the shapes already match. Every row is fully overwritten
// (gates carry one sampled candidate per edge), so no zeroing is needed.
func LogProbGradAtInto(dst *AlphaGrad, s AlphaSnapshot, g nas.Gates) {
	dst.Normal = shapedRows(dst.Normal, len(s.Normal), len(s.Normal[0]))
	dst.Reduce = shapedRows(dst.Reduce, len(s.Reduce), len(s.Reduce[0]))
	// Softmax straight into the gradient row, then negate and add the
	// Kronecker one: no per-edge probability temporaries. This function is
	// called concurrently by round-engine workers, so all written state is
	// confined to dst.
	fill := func(rows, alpha [][]float64, gates []int) {
		for e, k := range gates {
			row := rows[e]
			tensor.SoftmaxInto(row, alpha[e])
			for j := range row {
				row[j] = -row[j]
			}
			row[k] += 1
		}
	}
	fill(dst.Normal, s.Normal, g.Normal)
	fill(dst.Reduce, s.Reduce, g.Reduce)
}

// shapedRows returns a rows×cols matrix, reusing the given storage when its
// shape already matches. Contents are unspecified; callers must overwrite.
func shapedRows(rows [][]float64, n, cols int) [][]float64 {
	if len(rows) != n {
		rows = make([][]float64, n)
	}
	for i := range rows {
		if len(rows[i]) != cols {
			rows[i] = make([]float64, cols)
		}
	}
	return rows
}

// ChainSoftmax converts per-edge dL/dp rows into dL/dα rows through the
// softmax Jacobian: dL/dα_j = Σ_i dL/dp_i · p_i (δ_ij − p_j). Used by the
// gradient-based baselines (DARTS, FedNAS) that differentiate the mixture.
func ChainSoftmax(dProbs, probs [][]float64) [][]float64 {
	out := make([][]float64, len(dProbs))
	for e := range dProbs {
		row := make([]float64, len(dProbs[e]))
		dot := 0.0
		for i := range dProbs[e] {
			dot += dProbs[e][i] * probs[e][i]
		}
		for j := range row {
			row[j] = probs[e][j] * (dProbs[e][j] - dot)
		}
		out[e] = row
	}
	return out
}

// SoftmaxRows exposes row-wise softmax for external α matrices (baselines
// keep their own α when they do not use the RL controller).
func SoftmaxRows(alpha [][]float64) [][]float64 { return softmaxRows(alpha) }

func softmaxRows(alpha [][]float64) [][]float64 {
	out := make([][]float64, len(alpha))
	for i, row := range alpha {
		out[i] = tensor.Softmax(row)
	}
	return out
}

// softmaxRowsInto is softmaxRows into reusable row storage, allocating only
// when the shape grows or changes.
func softmaxRowsInto(dst [][]float64, alpha [][]float64) [][]float64 {
	if len(dst) != len(alpha) {
		dst = make([][]float64, len(alpha))
	}
	for i, row := range alpha {
		if len(dst[i]) != len(row) {
			dst[i] = make([]float64, len(row))
		}
		tensor.SoftmaxInto(dst[i], row)
	}
	return dst
}

func sampleRows(rng *rand.Rand, probs [][]float64) []int {
	out := make([]int, len(probs))
	for e, row := range probs {
		r := rng.Float64()
		acc := 0.0
		k := len(row) - 1
		for j, p := range row {
			acc += p
			if r < acc {
				k = j
				break
			}
		}
		out[e] = k
	}
	return out
}

func zeroRows(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}

func copyRows(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i := range src {
		out[i] = append([]float64(nil), src[i]...)
	}
	return out
}

func subRows(dst, src [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] -= src[i][j]
		}
	}
}

// clipRows measures the joint L2 norm of the row groups and, when maxNorm
// is positive, rescales them in place so the norm does not exceed it.
func clipRows(maxNorm float64, rowGroups ...[][]float64) float64 {
	s := 0.0
	for _, rows := range rowGroups {
		for _, row := range rows {
			for _, v := range row {
				s += v * v
			}
		}
	}
	norm := math.Sqrt(s)
	if norm > maxNorm && norm > 0 {
		c := maxNorm / norm
		for _, rows := range rowGroups {
			for _, row := range rows {
				for j := range row {
					row[j] *= c
				}
			}
		}
	}
	return norm
}
