package controller

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedrlnas/internal/nas"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	c, err := New(5, 5, nas.NumOps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, 8, DefaultConfig()); err == nil {
		t.Error("expected error for zero normal edges")
	}
	if _, err := New(5, 5, 1, DefaultConfig()); err == nil {
		t.Error("expected error for single candidate")
	}
}

func TestInitialPolicyUniform(t *testing.T) {
	c := newTestController(t)
	pn, pr := c.Probs()
	want := 1.0 / nas.NumOps
	for _, rows := range [][][]float64{pn, pr} {
		for e, row := range rows {
			for j, p := range row {
				if math.Abs(p-want) > 1e-12 {
					t.Fatalf("edge %d cand %d prob %v, want %v", e, j, p, want)
				}
			}
		}
	}
	if got := c.Entropy(); math.Abs(got-math.Log(nas.NumOps)) > 1e-9 {
		t.Errorf("initial entropy %v, want ln %d", got, nas.NumOps)
	}
}

func TestSampleGatesDeterministic(t *testing.T) {
	c := newTestController(t)
	g1 := c.SampleGates(rand.New(rand.NewSource(3)))
	g2 := c.SampleGates(rand.New(rand.NewSource(3)))
	for i := range g1.Normal {
		if g1.Normal[i] != g2.Normal[i] {
			t.Fatal("sampling not deterministic for equal seeds")
		}
	}
	if len(g1.Normal) != 5 || len(g1.Reduce) != 5 {
		t.Fatalf("gate lengths %d/%d, want 5/5", len(g1.Normal), len(g1.Reduce))
	}
}

func TestSampleGatesInRange(t *testing.T) {
	c := newTestController(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		g := c.SampleGates(rng)
		for _, k := range append(g.Normal, g.Reduce...) {
			if k < 0 || k >= nas.NumOps {
				t.Fatalf("sampled candidate %d out of range", k)
			}
		}
	}
}

// Property (Eq. 12): each gradient row sums to zero and equals δ − p.
func TestLogProbGradRowsSumToZero(t *testing.T) {
	c := newTestController(t)
	// Make the policy non-uniform first.
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 10; step++ {
		g := c.SampleGates(rng)
		grad := c.LogProbGrad(g)
		grad.Scale(0.5)
		c.Apply(grad)
	}
	g := c.SampleGates(rng)
	grad := c.LogProbGrad(g)
	pn, _ := c.Probs()
	for e, row := range grad.Normal {
		sum := 0.0
		for j, v := range row {
			sum += v
			want := -pn[e][j]
			if j == g.Normal[e] {
				want += 1
			}
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("edge %d cand %d grad %v, want %v", e, j, v, want)
			}
		}
		if math.Abs(sum) > 1e-9 {
			t.Fatalf("edge %d grad row sums to %v, want 0", e, sum)
		}
	}
}

// The analytic gradient must match finite differences of log p(g).
func TestLogProbGradNumeric(t *testing.T) {
	c := newTestController(t)
	rng := rand.New(rand.NewSource(6))
	// random-ish alpha
	for e := range c.alphaNormal {
		for j := range c.alphaNormal[e] {
			c.alphaNormal[e][j] = rng.NormFloat64()
			c.alphaReduce[e][j] = rng.NormFloat64()
		}
	}
	g := c.SampleGates(rng)
	grad := c.LogProbGrad(g)
	const eps = 1e-6
	for e := 0; e < 2; e++ { // a couple of edges suffices
		for j := 0; j < nas.NumOps; j++ {
			orig := c.alphaNormal[e][j]
			c.alphaNormal[e][j] = orig + eps
			up := c.LogProb(g)
			c.alphaNormal[e][j] = orig - eps
			down := c.LogProb(g)
			c.alphaNormal[e][j] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-grad.Normal[e][j]) > 1e-6 {
				t.Fatalf("edge %d cand %d: analytic %v numeric %v", e, j, grad.Normal[e][j], num)
			}
		}
	}
}

// REINFORCE sanity: rewarding one candidate must raise its probability.
func TestReinforceShiftsPolicyTowardReward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LR = 0.05
	c, err := New(5, 5, nas.NumOps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	target := 3
	for step := 0; step < 800; step++ {
		g := c.SampleGates(rng)
		reward := 0.0
		for _, k := range g.Normal {
			if k == target {
				reward += 1
			}
		}
		reward /= float64(len(g.Normal))
		grad := c.LogProbGrad(g)
		grad.Scale(reward - 1.0/nas.NumOps) // center on the mean reward
		c.Apply(grad)
	}
	pn, _ := c.Probs()
	for e, row := range pn {
		if row[target] < 1.4/nas.NumOps {
			t.Errorf("edge %d: target prob %v did not grow", e, row[target])
		}
	}
	if c.Entropy() >= math.Log(nas.NumOps) {
		t.Error("entropy did not shrink during training")
	}
}

func TestBaselineMovingAverage(t *testing.T) {
	c := newTestController(t)
	b1 := c.UpdateBaseline(0.4)
	if b1 != 0.4 {
		t.Errorf("first baseline %v, want 0.4 (bootstrap)", b1)
	}
	b2 := c.UpdateBaseline(0.8)
	want := 0.99*0.8 + 0.01*0.4
	if math.Abs(b2-want) > 1e-12 {
		t.Errorf("second baseline %v, want %v", b2, want)
	}
	if got := c.Reward(0.9); math.Abs(got-(0.9-want)) > 1e-12 {
		t.Errorf("reward %v, want %v", got, 0.9-want)
	}
}

func TestRewardBeforeBaselineIsZero(t *testing.T) {
	c := newTestController(t)
	if got := c.Reward(0.7); got != 0 {
		t.Errorf("reward before any baseline %v, want 0", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := newTestController(t)
	rng := rand.New(rand.NewSource(8))
	snap := c.Snapshot()
	for step := 0; step < 5; step++ {
		g := c.SampleGates(rng)
		c.Apply(c.LogProbGrad(g))
	}
	moved := c.Snapshot()
	if snap.Diff(moved).L2Norm() == 0 {
		t.Fatal("alpha did not move")
	}
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Diff(snap).L2Norm() != 0 {
		t.Error("restore did not recover snapshot")
	}
	// Snapshot isolation: mutating the controller must not change snap.
	c.Apply(c.LogProbGrad(c.SampleGates(rng)))
	if snap.Normal[0][0] != 0 {
		t.Error("snapshot aliased controller state")
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	c := newTestController(t)
	bad := AlphaSnapshot{Normal: zeroRows(2, nas.NumOps), Reduce: zeroRows(5, nas.NumOps)}
	if err := c.Restore(bad); err == nil {
		t.Error("expected shape mismatch error")
	}
}

func TestApplyClipsLargeGradients(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LR = 1
	cfg.WeightDecay = 0
	c, err := New(2, 2, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := NewAlphaGrad(2, 2, 4)
	for i := range g.Normal {
		for j := range g.Normal[i] {
			g.Normal[i][j] = 100
		}
	}
	c.Apply(g)
	// Post-clip joint norm is 5, so no single entry may exceed 5.
	for _, row := range c.alphaNormal {
		for _, v := range row {
			if v > 5 {
				t.Fatalf("alpha entry %v exceeds clip", v)
			}
		}
	}
}

func TestChainSoftmaxNumeric(t *testing.T) {
	// d/dα of L(p(α)) where L = Σ c_i p_i must match ChainSoftmax.
	alpha := [][]float64{{0.3, -0.2, 0.9}}
	coef := []float64{1.5, -0.7, 0.2}
	lossAt := func() float64 {
		p := SoftmaxRows(alpha)[0]
		s := 0.0
		for i := range p {
			s += coef[i] * p[i]
		}
		return s
	}
	probs := SoftmaxRows(alpha)
	got := ChainSoftmax([][]float64{coef}, probs)[0]
	const eps = 1e-7
	for j := range alpha[0] {
		orig := alpha[0][j]
		alpha[0][j] = orig + eps
		up := lossAt()
		alpha[0][j] = orig - eps
		down := lossAt()
		alpha[0][j] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-got[j]) > 1e-6 {
			t.Fatalf("dα[%d]: analytic %v numeric %v", j, got[j], num)
		}
	}
}

func TestDeriveUsesArgmax(t *testing.T) {
	c, err := New(2, 2, len(nas.AllOps), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.alphaNormal[0][4] = 3 // sep_conv_3x3
	c.alphaNormal[1][1] = 3 // skip_connect
	c.alphaReduce[0][2] = 3 // max_pool_3x3
	c.alphaReduce[1][7] = 3 // dil_conv_5x5
	g := c.Derive(nas.AllOps, 1)
	if g.Normal[0] != nas.OpSepConv3 || g.Normal[1] != nas.OpIdentity {
		t.Errorf("derived normal %v", g.Normal)
	}
	if g.Reduce[0] != nas.OpMaxPool3 || g.Reduce[1] != nas.OpDilConv5 {
		t.Errorf("derived reduce %v", g.Reduce)
	}
}

func TestAlphaGradOps(t *testing.T) {
	a := NewAlphaGrad(1, 1, 3)
	b := NewAlphaGrad(1, 1, 3)
	b.Normal[0][1] = 2
	a.AXPY(0.5, b)
	if a.Normal[0][1] != 1 {
		t.Errorf("AXPY result %v", a.Normal[0][1])
	}
	a.Scale(3)
	if a.Normal[0][1] != 3 {
		t.Errorf("Scale result %v", a.Normal[0][1])
	}
	// MulAdd3: dst += a*(x⊙x⊙d)
	x := NewAlphaGrad(1, 1, 3)
	d := NewAlphaGrad(1, 1, 3)
	x.Normal[0][0] = 2
	d.Normal[0][0] = 5
	a.MulAdd3(0.5, x, d)
	if a.Normal[0][0] != 0.5*4*5 {
		t.Errorf("MulAdd3 result %v, want 10", a.Normal[0][0])
	}
	if got := b.L2Norm(); math.Abs(got-2) > 1e-12 {
		t.Errorf("L2Norm %v, want 2", got)
	}
}

// Property: sampled gate frequencies converge to the softmax policy.
func TestSamplingMatchesPolicy(t *testing.T) {
	c, err := New(1, 1, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.alphaNormal[0] = []float64{1, 0, -1}
	pn, _ := c.Probs()
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 3)
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[c.SampleGates(rng).Normal[0]]++
	}
	for j := range counts {
		freq := float64(counts[j]) / trials
		if math.Abs(freq-pn[0][j]) > 0.02 {
			t.Errorf("candidate %d freq %v vs prob %v", j, freq, pn[0][j])
		}
	}
}

// Property: probabilities remain a valid distribution after arbitrary updates.
func TestProbsRemainDistribution(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		c, err := New(3, 3, 4, DefaultConfig())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < int(steps%32); s++ {
			g := c.SampleGates(rng)
			grad := c.LogProbGrad(g)
			grad.Scale(rng.NormFloat64())
			c.Apply(grad)
		}
		pn, pr := c.Probs()
		for _, rows := range [][][]float64{pn, pr} {
			for _, row := range rows {
				sum := 0.0
				for _, p := range row {
					if p < 0 || math.IsNaN(p) {
						return false
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
