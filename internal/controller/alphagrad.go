package controller

// AlphaGrad is a gradient (or gradient-like correction) over both α
// matrices. The zero value is unusable; construct via NewAlphaGrad or
// Controller.LogProbGrad.
type AlphaGrad struct {
	Normal [][]float64
	Reduce [][]float64
}

// NewAlphaGrad allocates a zero gradient with the given edge counts and
// candidate count.
func NewAlphaGrad(normalEdges, reduceEdges, numCandidates int) AlphaGrad {
	return AlphaGrad{
		Normal: zeroRows(normalEdges, numCandidates),
		Reduce: zeroRows(reduceEdges, numCandidates),
	}
}

// Zero resets every entry to 0 (for reusing an accumulator across rounds).
func (g AlphaGrad) Zero() {
	zeroRowsInPlace(g.Normal)
	zeroRowsInPlace(g.Reduce)
}

func zeroRowsInPlace(rows [][]float64) {
	for i := range rows {
		row := rows[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// Clone deep-copies g.
func (g AlphaGrad) Clone() AlphaGrad {
	return AlphaGrad{Normal: copyRows(g.Normal), Reduce: copyRows(g.Reduce)}
}

// AXPY performs g += a·x elementwise.
func (g AlphaGrad) AXPY(a float64, x AlphaGrad) {
	axpyRows(g.Normal, a, x.Normal)
	axpyRows(g.Reduce, a, x.Reduce)
}

// Scale multiplies g by a elementwise.
func (g AlphaGrad) Scale(a float64) {
	scaleRows(g.Normal, a)
	scaleRows(g.Reduce, a)
}

// MulAdd3 performs g += a · (x ⊙ x ⊙ d): the second-order Taylor
// delay-compensation correction term of Eq. 15, where x is the stale
// gradient and d the parameter drift.
func (g AlphaGrad) MulAdd3(a float64, x, d AlphaGrad) {
	mulAdd3Rows(g.Normal, a, x.Normal, d.Normal)
	mulAdd3Rows(g.Reduce, a, x.Reduce, d.Reduce)
}

// L2Norm returns the joint Euclidean norm of both matrices.
func (g AlphaGrad) L2Norm() float64 {
	return clipRows(0, g.Normal, g.Reduce) // maxNorm<=0 means measure only
}

func axpyRows(dst [][]float64, a float64, src [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += a * src[i][j]
		}
	}
}

func scaleRows(rows [][]float64, a float64) {
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] *= a
		}
	}
}

func mulAdd3Rows(dst [][]float64, a float64, x, d [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += a * x[i][j] * x[i][j] * d[i][j]
		}
	}
}
