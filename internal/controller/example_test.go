package controller_test

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/nas"
)

// Example shows the controller's REINFORCE loop in miniature: sample an
// architecture, observe a reward, and push the policy toward it (Eq. 8–12).
func Example() {
	cfg := controller.DefaultConfig()
	cfg.LR = 0.5
	ctrl, err := controller.New(2, 2, 4, cfg) // 2 edges per cell, 4 candidate ops
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))

	reward := func(g nas.Gates) float64 {
		// Pretend candidate 2 is the best op on every edge.
		score := 0.0
		for _, k := range append(g.Normal, g.Reduce...) {
			if k == 2 {
				score += 0.25
			}
		}
		return score
	}

	for step := 0; step < 300; step++ {
		g := ctrl.SampleGates(rng)
		r := reward(g)
		grad := ctrl.LogProbGrad(g) // analytic ∇α log p(g), Eq. 12
		grad.Scale(ctrl.Reward(r))  // baselined reward, Eq. 8
		ctrl.Apply(grad)            // ascent on J(α)
		ctrl.UpdateBaseline(r)      // moving average, Eq. 9
	}
	geno := ctrl.Derive([]nas.OpKind{nas.OpZero, nas.OpIdentity, nas.OpSepConv3, nas.OpMaxPool3}, 1)
	fmt.Println(geno.Normal[0], geno.Normal[1])
	// Output: sep_conv_3x3 sep_conv_3x3
}
