package cohort

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, 5); err == nil {
		t.Fatal("enrolled=0 accepted")
	}
	if _, err := New(1, -3, 5); err == nil {
		t.Fatal("enrolled<0 accepted")
	}
	if _, err := New(1, 10, -1); err == nil {
		t.Fatal("size<0 accepted")
	}
	s, err := New(1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Full() || s.Size() != 10 {
		t.Fatalf("size=0 should select everyone, got size %d full %v", s.Size(), s.Full())
	}
	s, err = New(1, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Full() || s.Size() != 10 {
		t.Fatalf("size>enrolled should clamp to everyone, got %d", s.Size())
	}
}

func TestCohortSortedUniqueInRange(t *testing.T) {
	s, err := New(42, 1000, 17)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		c := s.Cohort(round)
		if len(c) != 17 {
			t.Fatalf("round %d: len %d", round, len(c))
		}
		if !sort.IntsAreSorted(c) {
			t.Fatalf("round %d: not sorted: %v", round, c)
		}
		seen := map[int]bool{}
		for _, id := range c {
			if id < 0 || id >= 1000 {
				t.Fatalf("round %d: id %d out of range", round, id)
			}
			if seen[id] {
				t.Fatalf("round %d: duplicate id %d", round, id)
			}
			seen[id] = true
		}
	}
}

// Same seed → identical schedule, across sampler instances and regardless
// of query order or repetition. This is the determinism half of the PR's
// core invariant.
func TestSameSeedSameSchedule(t *testing.T) {
	a, _ := New(7, 500, 20)
	b, _ := New(7, 500, 20)

	// Query b out of order and repeatedly first, to prove draws are pure
	// functions of the round with no hidden stream state.
	_ = b.Cohort(9)
	_ = b.Cohort(3)
	_ = b.Cohort(3)

	for round := 0; round < 12; round++ {
		ca, cb := a.Cohort(round), b.Cohort(round)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("round %d: %v vs %v", round, ca, cb)
		}
	}
}

func TestDifferentSeedsOrRoundsDiffer(t *testing.T) {
	a, _ := New(1, 10000, 10)
	b, _ := New(2, 10000, 10)
	sameSeed, sameRound := 0, 0
	const rounds = 30
	for round := 0; round < rounds; round++ {
		if reflect.DeepEqual(a.Cohort(round), b.Cohort(round)) {
			sameSeed++
		}
		if round > 0 && reflect.DeepEqual(a.Cohort(round), a.Cohort(round-1)) {
			sameRound++
		}
	}
	// With 10 of 10,000 drawn, any collision is astronomically unlikely.
	if sameSeed > 0 || sameRound > 0 {
		t.Fatalf("schedules collide: %d cross-seed, %d cross-round", sameSeed, sameRound)
	}
}

func TestFullCohortIsIdentity(t *testing.T) {
	s, _ := New(99, 6, 6)
	want := []int{0, 1, 2, 3, 4, 5}
	for round := 0; round < 5; round++ {
		if got := s.Cohort(round); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: %v", round, got)
		}
	}
}

func TestAppendCohortReusesBuffer(t *testing.T) {
	s, _ := New(11, 200, 8)
	buf := make([]int, 0, 8)
	first := s.AppendCohort(buf, 4)
	again := s.AppendCohort(first[:0], 4)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("reused-buffer draw differs: %v vs %v", first, again)
	}
	if &first[0] != &again[0] {
		t.Fatal("AppendCohort reallocated despite sufficient capacity")
	}
}

// Partial Fisher–Yates must be uniform: over many rounds every participant
// should appear with frequency ≈ size/enrolled.
func TestSamplingRoughlyUniform(t *testing.T) {
	const (
		enrolled = 50
		size     = 10
		rounds   = 5000
	)
	s, _ := New(123, enrolled, size)
	counts := make([]int, enrolled)
	for round := 0; round < rounds; round++ {
		for _, id := range s.Cohort(round) {
			counts[id]++
		}
	}
	want := float64(rounds) * float64(size) / float64(enrolled)
	for id, c := range counts {
		if ratio := float64(c) / want; ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("participant %d drawn %d times, want ≈%.0f (ratio %.3f)", id, c, want, ratio)
		}
	}
}

func TestPosition(t *testing.T) {
	c := []int{2, 5, 9, 40}
	for i, id := range c {
		pos, ok := Position(c, id)
		if !ok || pos != i {
			t.Fatalf("Position(%d) = %d,%v", id, pos, ok)
		}
	}
	for _, id := range []int{0, 3, 41} {
		if _, ok := Position(c, id); ok {
			t.Fatalf("Position(%d) found non-member", id)
		}
	}
}

func TestContains(t *testing.T) {
	s, _ := New(5, 300, 12)
	c := s.Cohort(7)
	inCohort := map[int]bool{}
	for _, id := range c {
		inCohort[id] = true
	}
	for id := 0; id < 300; id++ {
		if s.Contains(7, id) != inCohort[id] {
			t.Fatalf("Contains(7, %d) = %v, want %v", id, s.Contains(7, id), inCohort[id])
		}
	}
	full, _ := New(5, 4, 4)
	if !full.Contains(0, 3) || full.Contains(0, 4) || full.Contains(0, -1) {
		t.Fatal("full-sampler Contains bounds wrong")
	}
}

func TestFractionSize(t *testing.T) {
	cases := []struct {
		k    int
		frac float64
		want int
	}{
		{10, 0, 10},
		{10, 1, 10},
		{10, -0.5, 10},
		{10, 0.5, 5},
		{10, 0.25, 3}, // round(2.5) = 3 (half away from zero)
		{10, 0.01, 1}, // floor to minimum of one client
		{7, 0.5, 4},   // round(3.5) = 4
		{10, 0.999, 10},
	}
	for _, c := range cases {
		if got := FractionSize(c.k, c.frac); got != c.want {
			t.Fatalf("FractionSize(%d, %g) = %d, want %d", c.k, c.frac, got, c.want)
		}
	}
}

// Against a reference full Fisher–Yates using the same per-round stream:
// the sparse partial shuffle must pick exactly the first `size` entries.
func TestMatchesReferenceShuffle(t *testing.T) {
	const (
		enrolled = 97
		size     = 13
		seed     = 77
	)
	s, _ := New(seed, enrolled, size)
	for round := 0; round < 20; round++ {
		rng := rand.New(rand.NewSource(roundSeed(seed, round)))
		perm := make([]int, enrolled)
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < size; i++ {
			j := i + rng.Intn(enrolled-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		want := append([]int(nil), perm[:size]...)
		sort.Ints(want)
		if got := s.Cohort(round); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: sparse %v vs reference %v", round, got, want)
		}
	}
}

func BenchmarkAppendCohort(b *testing.B) {
	s, _ := New(1, 10000, 10)
	buf := make([]int, 0, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.AppendCohort(buf[:0], i)
	}
}
