// Package cohort implements deterministic per-round participant sampling
// for population-scale federated rounds. Production FL does not run every
// enrolled client every round: a small cohort is drawn per round from a
// large (possibly churning) population, and only cohort members pay any
// per-round cost. This package is the single sampler shared by the
// in-process engine (internal/search), the FedAvg trainer (internal/fed,
// where it absorbs the ClientFraction path), and the RPC server
// (internal/rpcfed), so CLI and distributed deployments draw identical
// schedules from the same seed.
//
// Determinism contract: round r's cohort is a pure function of
// (seed, enrolled, size, r). The sampler owns no mutable RNG stream —
// every round reseeds from a SplitMix64 mix of the seed and the round
// index — so the schedule is independent of call order, of how many times
// a round is queried, of every other RNG stream in the system, and (the
// invariant inherited from the lifecycle layer) of any fault or chaos
// schedule. Two runs with the same seed sample the same cohorts even if
// one of them loses half its connections.
package cohort

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sampler draws a fixed-size per-round cohort from an enrolled population.
// The zero value is not usable; construct with New. A Sampler is immutable
// after construction except for an internal scratch map, so callers that
// share one across goroutines must serialize AppendCohort calls (the round
// loops that own samplers are single-threaded, and Cohort allocates a
// private result anyway).
type Sampler struct {
	seed     int64
	enrolled int
	size     int

	// swaps is the sparse Fisher–Yates scratch reused across rounds so a
	// steady-state draw is O(size), not O(enrolled), in both time and
	// fresh allocations.
	swaps map[int]int
}

// New returns a sampler over an enrolled population of k participants that
// draws size-member cohorts. size <= 0 or size >= k selects everyone (the
// pre-population behavior: every round runs the full population).
func New(seed int64, enrolled, size int) (*Sampler, error) {
	if enrolled <= 0 {
		return nil, fmt.Errorf("cohort: enrolled %d must be positive", enrolled)
	}
	if size < 0 {
		return nil, fmt.Errorf("cohort: size %d must be >= 0", size)
	}
	if size == 0 || size > enrolled {
		size = enrolled
	}
	return &Sampler{
		seed:     seed,
		enrolled: enrolled,
		size:     size,
		swaps:    make(map[int]int, size),
	}, nil
}

// Enrolled returns the population size K.
func (s *Sampler) Enrolled() int { return s.enrolled }

// Size returns the effective cohort size (equal to Enrolled when the
// sampler selects everyone).
func (s *Sampler) Size() int { return s.size }

// Full reports whether every enrolled participant is in every cohort, i.e.
// the sampler is a no-op and callers may keep their full-population paths.
func (s *Sampler) Full() bool { return s.size == s.enrolled }

// Cohort returns round's cohort as a fresh sorted slice of participant
// indices in [0, Enrolled), without duplicates.
func (s *Sampler) Cohort(round int) []int {
	return s.AppendCohort(nil, round)
}

// AppendCohort appends round's cohort to buf (pass buf[:0] to reuse
// storage across rounds) and returns the extended slice, sorted ascending.
// The ascending order is load-bearing: every merge downstream runs in
// cohort order, so sorting here is what keeps aggregation order canonical
// no matter what order the draw produced.
func (s *Sampler) AppendCohort(buf []int, round int) []int {
	start := len(buf)
	if s.Full() {
		for i := 0; i < s.enrolled; i++ {
			buf = append(buf, i)
		}
		return buf
	}
	// Partial Fisher–Yates over [0, enrolled) with sparse swap tracking:
	// draw i swaps a uniform j ∈ [i, enrolled) into position i. Only
	// positions actually touched live in the map, so a 10-member cohort
	// from a 10,000-member population touches ~20 map entries.
	rng := rand.New(rand.NewSource(roundSeed(s.seed, round)))
	clear(s.swaps)
	for i := 0; i < s.size; i++ {
		j := i + rng.Intn(s.enrolled-i)
		vj, ok := s.swaps[j]
		if !ok {
			vj = j
		}
		vi, ok := s.swaps[i]
		if !ok {
			vi = i
		}
		buf = append(buf, vj)
		s.swaps[j] = vi
	}
	sort.Ints(buf[start:])
	return buf
}

// Contains reports whether participant k is in round's cohort. It draws
// the cohort, so it is O(Size log Size); callers on a hot path should keep
// the round's sorted cohort and binary-search it with Position instead.
func (s *Sampler) Contains(round, k int) bool {
	if s.Full() {
		return k >= 0 && k < s.enrolled
	}
	_, ok := Position(s.Cohort(round), k)
	return ok
}

// Position binary-searches a sorted cohort for participant k, returning
// its cohort position (the index all per-round state is keyed by).
func Position(sortedCohort []int, k int) (int, bool) {
	i := sort.SearchInts(sortedCohort, k)
	if i < len(sortedCohort) && sortedCohort[i] == k {
		return i, true
	}
	return 0, false
}

// FractionSize converts McMahan-style client-fraction C into an absolute
// cohort size over k participants: max(1, round(C·k)), with C <= 0 or
// C >= 1 meaning everyone. This is the single place the FedAvg
// ClientFraction semantics live now that fed and rpcfed share one sampler.
func FractionSize(k int, fraction float64) int {
	if fraction <= 0 || fraction >= 1 {
		return k
	}
	n := int(fraction*float64(k) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > k {
		n = k
	}
	return n
}

// roundSeed mixes the run seed with the round index through SplitMix64 so
// consecutive rounds land on decorrelated RNG streams (adjacent raw seeds
// of Go's LFSR source produce visibly correlated first draws).
func roundSeed(seed int64, round int) int64 {
	z := uint64(seed) + (uint64(round)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
