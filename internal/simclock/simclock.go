// Package simclock is a deterministic discrete-event virtual clock. The
// federated simulator uses it to measure round latency, straggler arrival,
// and device-speed effects (Table V, Fig. 7) without wall-clock sleeps.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock advances virtual time by draining a priority queue of events.
// It is not safe for concurrent use; the simulator drives it from a single
// goroutine (our substrate is strictly sequential — see DESIGN.md).
type Clock struct {
	now    time.Duration
	events eventQueue
	seq    int
}

// New returns a clock at virtual time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule enqueues fn to run at now+delay. Negative delays are clamped to
// zero (the event runs at the current instant, after already-queued events
// for that instant).
func (c *Clock) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	heap.Push(&c.events, &event{at: c.now + delay, seq: c.seq, fn: fn})
	c.seq++
}

// Step runs the earliest pending event, advancing time to it. It reports
// whether an event ran.
func (c *Clock) Step() bool {
	if c.events.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&c.events).(*event)
	if !ok {
		return false
	}
	c.now = ev.at
	ev.fn()
	return true
}

// Run drains all events (including ones scheduled while draining) and
// returns the final virtual time.
func (c *Clock) Run() time.Duration {
	for c.Step() {
	}
	return c.now
}

// RunUntil drains events with timestamps <= deadline and advances the clock
// to the deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	for c.events.Len() > 0 && c.events[0].at <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return c.events.Len() }

// Advance moves time forward by d without running events; it refuses to
// jump past a pending event.
func (c *Clock) Advance(d time.Duration) error {
	target := c.now + d
	if c.events.Len() > 0 && c.events[0].at < target {
		return fmt.Errorf("simclock: pending event at %v before target %v", c.events[0].at, target)
	}
	c.now = target
	return nil
}

type event struct {
	at  time.Duration
	seq int // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
