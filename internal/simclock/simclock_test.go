package simclock

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	c.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	c.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if c.Now() != 30*time.Millisecond {
		t.Errorf("final time %v", c.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var fired bool
	c.Schedule(time.Second, func() {
		c.Schedule(time.Second, func() { fired = true })
	})
	end := c.Run()
	if !fired {
		t.Error("nested event did not fire")
	}
	if end != 2*time.Second {
		t.Errorf("end time %v, want 2s", end)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := New()
	c.Schedule(time.Second, func() {})
	c.Run()
	ran := false
	c.Schedule(-time.Second, func() { ran = true })
	c.Run()
	if !ran {
		t.Error("negative-delay event did not run")
	}
	if c.Now() != time.Second {
		t.Errorf("time went backwards: %v", c.Now())
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var count int
	c.Schedule(time.Second, func() { count++ })
	c.Schedule(3*time.Second, func() { count++ })
	c.RunUntil(2 * time.Second)
	if count != 1 {
		t.Errorf("ran %d events before deadline, want 1", count)
	}
	if c.Now() != 2*time.Second {
		t.Errorf("clock at %v, want 2s", c.Now())
	}
	if c.Pending() != 1 {
		t.Errorf("pending %d, want 1", c.Pending())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	if err := c.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Now() != time.Minute {
		t.Errorf("Now = %v", c.Now())
	}
	c.Schedule(time.Second, func() {})
	if err := c.Advance(time.Hour); err == nil {
		t.Error("expected error jumping past pending event")
	}
}

func TestStepOnEmpty(t *testing.T) {
	c := New()
	if c.Step() {
		t.Error("Step on empty clock must return false")
	}
}
