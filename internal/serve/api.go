package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/scenario"
	"fedrlnas/internal/search"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/tensor"
)

// JobSpec is the POST /v1/jobs request body. Config fields overlay
// search.DefaultConfig, so a spec only states what differs from the paper
// defaults; Resume points at a checkpoint to continue from; Scenario runs
// the job under a full device-population scenario (profile mix, skew,
// personalization) and takes precedence over a Scenario inside Config.
type JobSpec struct {
	Config   json.RawMessage `json:"config,omitempty"`
	Resume   string          `json:"resume,omitempty"`
	Scenario *scenario.Spec  `json:"scenario,omitempty"`
}

// ModelSpec is the POST /jobs/{id}/serve and POST /models request body.
// The jobs variant derives the genotype from the live job and takes Net
// from the job config; the models variant states both explicitly.
type ModelSpec struct {
	Net      *nas.Config   `json:"net,omitempty"`
	Genotype *nas.Genotype `json:"genotype,omitempty"`
	// Seed fixes the served model's weight initialization, making logits a
	// pure function of (net, genotype, seed) — checksum-comparable across
	// servers and batch policies.
	Seed      int64 `json:"seed"`
	MaxBatch  int   `json:"max_batch,omitempty"`
	MaxWaitMS int   `json:"max_wait_ms,omitempty"`
	QueueCap  int   `json:"queue_cap,omitempty"`
}

func (m *ModelSpec) batchConfig() BatchConfig {
	return BatchConfig{
		MaxBatch: m.MaxBatch,
		MaxWait:  time.Duration(m.MaxWaitMS) * time.Millisecond,
		QueueCap: m.QueueCap,
	}
}

// InferRequest is the POST /models/{id}/infer request body: one example in
// row-major [C,H,W] order.
type InferRequest struct {
	Shape []int     `json:"shape"`
	Input []float64 `json:"input"`
}

// InferResponse carries the example's logits.
type InferResponse struct {
	Logits []float64 `json:"logits"`
}

// ModelInfo is the POST /models response.
type ModelInfo struct {
	ID       string `json:"id"`
	Classes  int    `json:"classes"`
	MaxBatch int    `json:"max_batch"`
}

// APIHandler returns the job/model HTTP API, versioned under /v1 (every
// route below is also served at its unversioned path as a deprecated
// alias, so existing clients keep working):
//
//	GET  /v1/jobs                  all job statuses
//	POST /v1/jobs                  create a job (JobSpec, incl. scenario)
//	GET  /v1/jobs/{id}             one job's status
//	POST /v1/jobs/{id}/pause       checkpoint + halt stepping
//	POST /v1/jobs/{id}/resume      continue a paused job
//	POST /v1/jobs/{id}/cancel      checkpoint + terminate
//	POST /v1/jobs/{id}/checkpoint  checkpoint between rounds
//	GET  /v1/jobs/{id}/genotype    current argmax genotype
//	POST /v1/jobs/{id}/serve       derive + serve the job's genotype (ModelSpec)
//	POST /v1/models                serve an explicit genotype (ModelSpec)
//	POST /v1/models/{id}/infer     batched single-example inference
//
// Mounted on the telemetry debug mux via Endpoints, so one listener carries
// /metrics, pprof and the serving API.
func (s *Server) APIHandler() http.Handler {
	api := s.apiRoutes()
	mux := http.NewServeMux()
	mux.Handle("/v1/", http.StripPrefix("/v1", api))
	mux.Handle("/", api)
	return mux
}

// apiRoutes builds the unprefixed route table shared by /v1 and the
// deprecated unversioned aliases.
func (s *Server) apiRoutes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("POST /jobs", s.handleCreateJob)
	mux.HandleFunc("GET /jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		writeJSON(w, http.StatusOK, j.Status())
	}))
	mux.HandleFunc("POST /jobs/{id}/pause", s.withJob(jobAction((*Job).Pause)))
	mux.HandleFunc("POST /jobs/{id}/resume", s.withJob(jobAction((*Job).Resume)))
	mux.HandleFunc("POST /jobs/{id}/cancel", s.withJob(jobAction((*Job).Cancel)))
	mux.HandleFunc("POST /jobs/{id}/checkpoint", s.withJob(jobAction((*Job).Checkpoint)))
	mux.HandleFunc("GET /jobs/{id}/genotype", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		g, err := j.Derive()
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, g)
	}))
	mux.HandleFunc("POST /jobs/{id}/serve", s.withJob(s.handleServeDerived))
	mux.HandleFunc("POST /models", s.handleServeModel)
	mux.HandleFunc("POST /models/{id}/infer", s.handleInfer)
	return mux
}

// Endpoints mounts the API on a telemetry debug mux: the versioned /v1/
// surface plus the unversioned aliases.
func (s *Server) Endpoints() []telemetry.Endpoint {
	api := s.APIHandler()
	return []telemetry.Endpoint{
		{Path: "/v1/", Handler: api},
		{Path: "/jobs", Handler: api},
		{Path: "/jobs/", Handler: api},
		{Path: "/models", Handler: api},
		{Path: "/models/", Handler: api},
	}
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg := search.DefaultConfig()
	if len(spec.Config) > 0 {
		if err := json.Unmarshal(spec.Config, &cfg); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if spec.Scenario != nil {
		cfg.Scenario = spec.Scenario
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.CreateJob(cfg, spec.Resume)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) withJob(fn func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		fn(w, r, j)
	}
}

func jobAction(act func(*Job) error) func(http.ResponseWriter, *http.Request, *Job) {
	return func(w http.ResponseWriter, r *http.Request, j *Job) {
		if err := act(j); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleServeDerived(w http.ResponseWriter, r *http.Request, j *Job) {
	var spec ModelSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, inf, err := s.ServeDerived(j.ID, spec.Seed, spec.batchConfig())
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, ModelInfo{ID: id, Classes: inf.NumClasses(), MaxBatch: inf.Config().MaxBatch})
}

func (s *Server) handleServeModel(w http.ResponseWriter, r *http.Request) {
	var spec ModelSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Net == nil || spec.Genotype == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("net and genotype are required"))
		return
	}
	id, inf, err := s.ServeModel(*spec.Net, *spec.Genotype, spec.Seed, spec.batchConfig())
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, ModelInfo{ID: id, Classes: inf.NumClasses(), MaxBatch: inf.Config().MaxBatch})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	inf, ok := s.Model(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no model %q", r.PathValue("id")))
		return
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Shape) != 3 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shape %v, want [C,H,W]", req.Shape))
		return
	}
	n := 1
	for _, d := range req.Shape {
		if d < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("shape %v has a non-positive dim", req.Shape))
			return
		}
		n *= d
	}
	if n != len(req.Input) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shape %v needs %d values, got %d", req.Shape, n, len(req.Input)))
		return
	}
	if req.Shape[0] != inf.InChannels() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%d channels, model expects %d", req.Shape[0], inf.InChannels()))
		return
	}
	x := tensor.New(req.Shape[0], req.Shape[1], req.Shape[2])
	copy(x.Data(), req.Input)
	logits, err := inf.Infer(x)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, InferResponse{Logits: logits})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
