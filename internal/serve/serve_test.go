package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/search"
	"fedrlnas/internal/tensor"
)

func tinySearchConfig(warmup, steps int) search.Config {
	cfg := search.DefaultConfig()
	cfg.Dataset = data.Spec{
		Name: "tiny", NumClasses: 5, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 40, TestPerClass: 10, Noise: 1.0, Confusion: 0.3, Seed: 91,
	}
	cfg.Net = testNetConfig()
	cfg.K = 4
	cfg.BatchSize = 8
	cfg.WarmupSteps = warmup
	cfg.SearchSteps = steps
	return cfg
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitRound(t *testing.T, j *Job, round int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for int(j.round.Load()) < round {
		if st := j.State(); st.Terminal() {
			t.Fatalf("job %s reached terminal %s at round %d before round %d (%s)",
				j.ID, st, j.round.Load(), round, j.Status().Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at round %d, want %d", j.ID, j.round.Load(), round)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobLifecycle walks the state machine: run → pause (checkpointed) →
// resume → completed, with Derive available throughout.
func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{CheckpointDir: dir})
	j, err := s.CreateJob(tinySearchConfig(2, 30), "")
	if err != nil {
		t.Fatal(err)
	}
	waitRound(t, j, 2)
	if err := j.Pause(); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobPaused)
	// Pausing must have checkpointed.
	if _, err := os.Stat(j.Status().Checkpoint); err != nil {
		t.Fatalf("pause did not checkpoint: %v", err)
	}
	pausedRound := j.Status().Round
	time.Sleep(10 * time.Millisecond)
	if got := j.Status().Round; got != pausedRound {
		t.Fatalf("paused job advanced from round %d to %d", pausedRound, got)
	}
	if _, err := j.Derive(); err != nil {
		t.Fatalf("derive while paused: %v", err)
	}
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobCompleted)
	st := j.Status()
	if st.Round != st.Total {
		t.Fatalf("completed at round %d of %d", st.Round, st.Total)
	}
	if _, err := j.Derive(); err != nil {
		t.Fatalf("derive after completion: %v", err)
	}
	// Illegal transitions are rejected, not ignored.
	if err := j.Pause(); err == nil {
		t.Error("pausing a completed job should fail")
	}
	if err := j.Resume(); err == nil {
		t.Error("resuming a completed job should fail")
	}
}

// TestJobFailureSurfacesError: a config that builds but cannot run must land
// in Failed with the error in the status.
func TestJobFailureSurfacesError(t *testing.T) {
	cfg := tinySearchConfig(1, 1)
	cfg.K = 0 // invalid: search.New rejects it
	s := NewServer(Options{})
	j, err := s.CreateJob(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobFailed)
	if j.Status().Error == "" {
		t.Fatal("failed job has no error in status")
	}
}

// TestDrainSuspendsAndCheckpoints is the graceful-shutdown satellite: after
// Drain, every live job is suspended with a checkpoint on disk, inference
// is refused, and a new server can resume the job from the checkpoint and
// finish the schedule.
func TestDrainSuspendsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{CheckpointDir: dir})
	j, err := s.CreateJob(tinySearchConfig(1, 1000), "")
	if err != nil {
		t.Fatal(err)
	}
	_, inf, err := s.ServeModel(testNetConfig(), testGenotype(), 5, BatchConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitRound(t, j, 3)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if j.State() != JobSuspended {
		t.Fatalf("after drain job is %s, want suspended", j.State())
	}
	ckpt := j.Status().Checkpoint
	ckptRound := j.Status().Round
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain did not checkpoint: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := inf.Infer(tensor.Randn(rng, 1, 1, 2, 8, 8)); err != ErrClosed {
		t.Fatalf("post-drain Infer = %v, want ErrClosed", err)
	}
	if _, err := s.CreateJob(tinySearchConfig(1, 1), ""); err != ErrDraining {
		t.Fatalf("post-drain CreateJob = %v, want ErrDraining", err)
	}

	// A successor process resumes the suspended job from its checkpoint.
	cfg := tinySearchConfig(1, 1000)
	cfg.SearchSteps = 9 // shorten the schedule so the revived job completes
	s2 := NewServer(Options{CheckpointDir: t.TempDir()})
	j2, err := s2.CreateJob(cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, JobCompleted)
	// The job keeps stepping between waitRound and Drain, so on a loaded
	// machine the checkpoint may already be past the shortened schedule;
	// the revived job then completes at the checkpoint round.
	want := 10
	if ckptRound > want {
		want = ckptRound
	}
	if got := j2.Status().Round; got != want {
		t.Fatalf("revived job completed at round %d, want %d", got, want)
	}
}

// TestConcurrentInferenceWhileJobSteps is the -race hammer: closed-loop
// inference clients pound a served model while a search job steps rounds on
// the same server, with lifecycle churn (pause/resume/derive) mixed in.
func TestConcurrentInferenceWhileJobSteps(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{CheckpointDir: dir})
	j, err := s.CreateJob(tinySearchConfig(1, 200), "")
	if err != nil {
		t.Fatal(err)
	}
	_, inf, err := s.ServeModel(testNetConfig(), testGenotype(), 5, BatchConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitRound(t, j, 1)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < 25; i++ {
				if _, err := inf.Infer(tensor.Randn(rng, 1, 1, 2, 8, 8)); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := j.Pause(); err != nil {
				return // job may have completed
			}
			if _, err := j.Derive(); err != nil {
				t.Errorf("derive: %v", err)
			}
			if err := j.Resume(); err != nil {
				t.Errorf("resume: %v", err)
			}
		}
	}()
	wg.Wait()
	if err := j.Cancel(); err != nil && !j.State().Terminal() {
		t.Fatalf("cancel: %v (state %s)", err, j.State())
	}
	<-j.Done()
	inf.Close()
}

// TestHTTPAPI exercises the full JSON API over a real listener: create a
// job, watch it step, pause/resume, derive a genotype, serve a model from
// the job, and run batched inference against it.
func TestHTTPAPI(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{CheckpointDir: dir, DefaultBatch: BatchConfig{MaxBatch: 4, MaxWait: time.Millisecond}})
	ts := httptest.NewServer(s.APIHandler())
	defer ts.Close()

	cfgJSON, err := json.Marshal(tinySearchConfig(1, 100000))
	if err != nil {
		t.Fatal(err)
	}
	var created JobStatus
	postJSON(t, ts.URL+"/jobs", JobSpec{Config: cfgJSON}, http.StatusCreated, &created)
	if created.ID == "" {
		t.Fatal("no job id")
	}
	jobURL := ts.URL + "/jobs/" + created.ID

	// Wait for rounds via the status endpoint.
	deadline := time.Now().Add(30 * time.Second)
	var st JobStatus
	for {
		getJSON(t, jobURL, &st)
		if st.Round >= 2 {
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	postJSON(t, jobURL+"/pause", struct{}{}, http.StatusOK, &st)
	if st.State != "paused" {
		t.Fatalf("state %s after pause", st.State)
	}
	var listed []JobStatus
	getJSON(t, ts.URL+"/jobs", &listed)
	if len(listed) != 1 || listed[0].ID != created.ID {
		t.Fatalf("job list %+v", listed)
	}
	var geno json.RawMessage
	getJSON(t, jobURL+"/genotype", &geno)
	if len(geno) == 0 {
		t.Fatal("empty genotype")
	}
	var model ModelInfo
	postJSON(t, jobURL+"/serve", ModelSpec{Seed: 7, MaxBatch: 4, MaxWaitMS: 1}, http.StatusCreated, &model)
	if model.Classes != 5 || model.MaxBatch != 4 {
		t.Fatalf("model info %+v", model)
	}

	rng := rand.New(rand.NewSource(31))
	in := make([]float64, 2*8*8)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	var out InferResponse
	postJSON(t, ts.URL+"/models/"+model.ID+"/infer",
		InferRequest{Shape: []int{2, 8, 8}, Input: in}, http.StatusOK, &out)
	if len(out.Logits) != 5 {
		t.Fatalf("%d logits, want 5", len(out.Logits))
	}

	// Bad requests are rejected with 4xx, not 500s or hangs.
	resp, err := http.Post(ts.URL+"/models/"+model.ID+"/infer", "application/json",
		bytes.NewReader([]byte(`{"shape":[2,8,8],"input":[1,2,3]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input -> %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job -> %d, want 404", resp.StatusCode)
	}

	postJSON(t, jobURL+"/resume", struct{}{}, http.StatusOK, &st)
	postJSON(t, jobURL+"/cancel", struct{}{}, http.StatusOK, &st)
	if st.State != "cancelled" {
		t.Fatalf("state %s after cancel", st.State)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-"+created.ID+".ckpt")); err != nil {
		t.Fatalf("cancel left no checkpoint: %v", err)
	}
}

func postJSON(t *testing.T, url string, body any, wantCode int, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s -> %d, want %d: %s", url, resp.StatusCode, wantCode, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("GET %s -> %d: %s", url, resp.StatusCode, msg.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
