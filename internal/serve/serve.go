package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/search"
	"fedrlnas/internal/telemetry"
)

// ErrDraining is returned for admission attempts (new jobs, new models, new
// inference requests) once Drain has begun.
var ErrDraining = errors.New("serve: server draining")

// Options configures a Server.
type Options struct {
	// CheckpointDir receives job checkpoints (job-<id>.ckpt). Empty
	// disables job checkpointing — pause/drain then skip the write.
	CheckpointDir string
	// CheckpointEvery streams a checkpoint every N completed rounds while
	// a job runs (0 = only at lifecycle events).
	CheckpointEvery int
	// DefaultBatch is the micro-batching policy applied when a serve
	// request leaves fields unset.
	DefaultBatch BatchConfig
	// Registry receives the serving metrics; nil creates a private one.
	Registry *telemetry.Registry
}

// Server hosts concurrent search jobs and served models. It is the
// process-resident core of cmd/fedserve, but embeds cleanly in tests and
// benchmarks (cmd/benchserve) without any networking.
type Server struct {
	opts Options
	reg  *telemetry.Registry
	met  *Metrics

	mu     sync.Mutex
	jobs   map[string]*Job
	models map[string]*Inference
	nextID int

	draining atomic.Bool
}

// NewServer constructs an idle server.
func NewServer(opts Options) *Server {
	if opts.DefaultBatch.MaxBatch < 1 {
		opts.DefaultBatch.MaxBatch = 8
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Server{
		opts:   opts,
		reg:    reg,
		met:    NewMetrics(reg),
		jobs:   make(map[string]*Job),
		models: make(map[string]*Inference),
	}
}

// Registry exposes the server's metric registry (the debug mux exports it).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Metrics exposes the serving instruments.
func (s *Server) Metrics() *Metrics { return s.met }

// CreateJob starts a search job; resume, when non-empty, loads that
// checkpoint before stepping. Construction happens on the job's goroutine,
// so this returns immediately with the job in Pending state.
func (s *Server) CreateJob(cfg search.Config, resume string) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("j%d", s.nextID)
	path := ""
	if s.opts.CheckpointDir != "" {
		path = filepath.Join(s.opts.CheckpointDir, "job-"+id+".ckpt")
	}
	j := newJob(id, cfg, path, s.opts.CheckpointEvery, resume, s.met)
	s.jobs[id] = j
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status, ordered by ID for stable output.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// ServeModel materializes genotype g under netCfg with weights seeded by
// seed and starts serving it with the given policy (zero-valued fields fall
// back to the server default). The explicit seed makes served logits a pure
// function of (netCfg, g, seed) — benchmark configs compare checksums on
// exactly that property. It returns the model ID used by Infer.
func (s *Server) ServeModel(netCfg nas.Config, g nas.Genotype, seed int64, bc BatchConfig) (string, *Inference, error) {
	if s.draining.Load() {
		return "", nil, ErrDraining
	}
	if bc.MaxBatch < 1 {
		bc.MaxBatch = s.opts.DefaultBatch.MaxBatch
	}
	if bc.MaxWait == 0 {
		bc.MaxWait = s.opts.DefaultBatch.MaxWait
	}
	if bc.QueueCap <= 0 {
		bc.QueueCap = s.opts.DefaultBatch.QueueCap
	}
	model, err := nas.NewFixedModel(rand.New(rand.NewSource(seed)), netCfg, g)
	if err != nil {
		return "", nil, fmt.Errorf("serve: %w", err)
	}
	inf, err := NewInference(model, bc, s.met)
	if err != nil {
		return "", nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("m%d", s.nextID)
	s.models[id] = inf
	return id, inf, nil
}

// ServeDerived derives job jobID's current genotype and serves it (the
// "what has the search found so far" endpoint).
func (s *Server) ServeDerived(jobID string, seed int64, bc BatchConfig) (string, *Inference, error) {
	j, ok := s.Job(jobID)
	if !ok {
		return "", nil, fmt.Errorf("serve: no job %s", jobID)
	}
	g, err := j.Derive()
	if err != nil {
		return "", nil, err
	}
	return s.ServeModel(j.Config().Net, g, seed, bc)
}

// Model looks up a served model by ID.
func (s *Server) Model(id string) (*Inference, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inf, ok := s.models[id]
	return inf, ok
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain is the graceful-shutdown path (SIGINT/SIGTERM in cmd/fedserve):
// stop admitting work, flush every served model's in-flight and queued
// requests, then suspend every live job — each writes a final checkpoint —
// and wait for their loops to exit. After Drain the process can exit and a
// successor can resume every job from its checkpoint. The first error is
// reported but the drain always runs to completion.
func (s *Server) Drain() error {
	s.draining.Store(true)
	s.mu.Lock()
	models := make([]*Inference, 0, len(s.models))
	for _, inf := range s.models {
		models = append(models, inf)
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, inf := range models {
		inf.Close()
	}
	var firstErr error
	for _, j := range jobs {
		if j.State().Terminal() {
			continue
		}
		if err := j.Suspend(); err != nil && firstErr == nil {
			firstErr = err
		}
		<-j.Done()
	}
	return firstErr
}
