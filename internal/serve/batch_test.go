package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/tensor"
)

func testNetConfig() nas.Config {
	return nas.Config{
		InChannels: 2, NumClasses: 5, C: 4, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
}

func testGenotype() nas.Genotype {
	return nas.Genotype{
		Normal: []nas.OpKind{nas.OpSepConv3, nas.OpIdentity},
		Reduce: []nas.OpKind{nas.OpMaxPool3, nas.OpSepConv5},
		Nodes:  1,
	}
}

func newTestInference(t *testing.T, bc BatchConfig) (*Inference, *nas.FixedModel) {
	t.Helper()
	model, err := nas.NewFixedModel(rand.New(rand.NewSource(5)), testNetConfig(), testGenotype())
	if err != nil {
		t.Fatal(err)
	}
	// A twin with identical weights for reference forwards: the served
	// model is dispatcher-owned, so comparisons use this copy.
	ref, err := nas.NewFixedModel(rand.New(rand.NewSource(5)), testNetConfig(), testGenotype())
	if err != nil {
		t.Fatal(err)
	}
	ref.SetTraining(false)
	inf, err := NewInference(model, bc, NewMetrics(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inf.Close)
	return inf, ref
}

// TestInferMatchesDirectForward: whatever batch a request lands in, its
// logits must equal a standalone forward of that example.
func TestInferMatchesDirectForward(t *testing.T) {
	inf, ref := newTestInference(t, BatchConfig{MaxBatch: 8, MaxWait: 2 * time.Millisecond})
	rng := rand.New(rand.NewSource(21))
	const n = 40
	xs := make([]*tensor.Tensor, n)
	want := make([][]float64, n)
	for i := range xs {
		xs[i] = tensor.Randn(rng, 1, 1, 2, 8, 8)
		want[i] = append([]float64(nil), ref.Forward(xs[i]).Data()...)
	}
	var wg sync.WaitGroup
	got := make([][]float64, n)
	errs := make([]error, n)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = inf.Infer(xs[i])
		}(i)
	}
	wg.Wait()
	for i := range xs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d logit %d: %v != %v (batching changed results)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestInferCoalesces drives concurrent requests through a MaxBatch=8 queue
// and checks the dispatcher actually batches (fewer batches than requests).
func TestInferCoalesces(t *testing.T) {
	inf, _ := newTestInference(t, BatchConfig{MaxBatch: 8, MaxWait: 5 * time.Millisecond})
	rng := rand.New(rand.NewSource(23))
	x := tensor.Randn(rng, 1, 1, 2, 8, 8)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := inf.Infer(x); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	batches := inf.met.Batches.Value()
	if batches >= n {
		t.Fatalf("%d batches for %d requests: no coalescing", batches, n)
	}
	if got := inf.met.Requests.Value(); got != n {
		t.Fatalf("requests counter %d, want %d", got, n)
	}
}

// TestCloseFlushesInFlight: every request admitted before Close must get an
// answer, and every request after must get ErrClosed.
func TestCloseFlushesInFlight(t *testing.T) {
	inf, _ := newTestInference(t, BatchConfig{MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 64})
	rng := rand.New(rand.NewSource(27))
	x := tensor.Randn(rng, 1, 1, 2, 8, 8)
	const n = 32
	var wg sync.WaitGroup
	results := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = inf.Infer(x)
		}(i)
	}
	wg.Wait() // all n admitted and answered before we close
	inf.Close()
	for i, err := range results {
		if err != nil {
			t.Fatalf("pre-close request %d: %v", i, err)
		}
	}
	if _, err := inf.Infer(x); err != ErrClosed {
		t.Fatalf("post-close Infer = %v, want ErrClosed", err)
	}
	inf.Close() // idempotent
}

// TestBatchPolicyRejectsBadConfig covers config validation.
func TestBatchPolicyRejectsBadConfig(t *testing.T) {
	model, err := nas.NewFixedModel(rand.New(rand.NewSource(5)), testNetConfig(), testGenotype())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInference(model, BatchConfig{MaxBatch: 0}, NewMetrics(telemetry.NewRegistry())); err == nil {
		t.Error("expected error for MaxBatch 0")
	}
	if _, err := NewInference(model, BatchConfig{MaxBatch: 4, MaxWait: -time.Second}, NewMetrics(telemetry.NewRegistry())); err == nil {
		t.Error("expected error for negative MaxWait")
	}
}
