package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/tensor"
)

// ErrClosed is returned by Infer once the model has been closed (drain or
// explicit shutdown).
var ErrClosed = errors.New("serve: model closed")

// BatchConfig is the micro-batching policy for one served model.
type BatchConfig struct {
	// MaxBatch is the dispatch size: a batch launches as soon as it holds
	// MaxBatch requests. 1 disables coalescing (every request is its own
	// forward). Batches always pad to MaxBatch so kernel shapes — and the
	// GEMM packing scratch behind them — stay identical across dispatches.
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch launches part-full. Dispatch triggers on
	// whichever of MaxBatch / MaxWait is hit first. 0 means launch with
	// whatever is already queued, never wait.
	MaxWait time.Duration
	// QueueCap is the admission queue capacity; submitters beyond it block
	// (closed-loop backpressure) rather than being dropped. <= 0 defaults
	// to 4×MaxBatch.
	QueueCap int
}

func (c *BatchConfig) normalize() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch %d, want >= 1", c.MaxBatch)
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("serve: negative MaxWait %v", c.MaxWait)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	return nil
}

// Inference owns one served model and its admission queue. All forwards run
// on the single dispatcher goroutine, so the model needs no locking and its
// ForwardBatch scratch is reused safely across dispatches.
type Inference struct {
	model *nas.FixedModel
	cfg   BatchConfig
	met   *Metrics

	reqs chan *inferReq
	// mu guards admission: Infer sends while holding the read side, Close
	// flips closed and closes reqs under the write side, so a send can
	// never race the close. Sends may block inside the read lock when the
	// queue is full; the dispatcher keeps draining, so they finish and
	// Close's write lock eventually acquires.
	mu     sync.RWMutex
	closed bool
	done   chan struct{}

	xs []*tensor.Tensor // dispatcher-owned batch assembly scratch
}

type inferReq struct {
	x      *tensor.Tensor
	logits []float64
	err    error
	done   chan struct{}
}

// NewInference starts serving model under the given policy. The model is
// switched to eval mode here — batched inference requires it (training-mode
// batch norm would couple rows) — and must not be used elsewhere while
// served.
func NewInference(model *nas.FixedModel, cfg BatchConfig, met *Metrics) (*Inference, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	model.SetTraining(false)
	inf := &Inference{
		model: model,
		cfg:   cfg,
		met:   met,
		reqs:  make(chan *inferReq, cfg.QueueCap),
		done:  make(chan struct{}),
		xs:    make([]*tensor.Tensor, 0, cfg.MaxBatch),
	}
	go inf.dispatch()
	return inf, nil
}

// Config returns the model's micro-batching policy.
func (inf *Inference) Config() BatchConfig { return inf.cfg }

// NumClasses returns the served model's output width.
func (inf *Inference) NumClasses() int { return inf.model.Net.Cfg.NumClasses }

// InputShape returns the expected per-example input shape [C, H, W]...
// which the model itself does not pin (H and W are architectural
// free variables); callers validate channel count only.
func (inf *Inference) InChannels() int { return inf.model.Net.Cfg.InChannels }

// Infer submits one example ([C,H,W] or [1,C,H,W]) and blocks until its
// batch completes, returning a caller-owned logits slice.
func (inf *Inference) Infer(x *tensor.Tensor) ([]float64, error) {
	req := &inferReq{x: x, done: make(chan struct{})}
	start := time.Now()
	inf.mu.RLock()
	if inf.closed {
		inf.mu.RUnlock()
		inf.met.Rejected.Inc()
		return nil, ErrClosed
	}
	inf.reqs <- req
	inf.mu.RUnlock()
	<-req.done
	inf.met.Requests.Inc()
	inf.met.InferSeconds.Observe(time.Since(start).Seconds())
	return req.logits, req.err
}

// Close stops admission, lets the dispatcher flush every already-admitted
// request (the in-flight batch and the queued backlog), and returns once
// the dispatcher has exited. Idempotent.
func (inf *Inference) Close() {
	inf.mu.Lock()
	if !inf.closed {
		inf.closed = true
		close(inf.reqs)
	}
	inf.mu.Unlock()
	<-inf.done
}

// dispatch is the batching loop: block for the batch's first request, then
// greedily absorb whatever is already queued, then wait out the remainder
// of MaxWait for the batch to fill. Channel-close semantics do the drain
// for free — after Close, receives keep yielding the queued backlog until
// it is empty, and only then report closed.
func (inf *Inference) dispatch() {
	defer close(inf.done)
	batch := make([]*inferReq, 0, inf.cfg.MaxBatch)
	for {
		req, ok := <-inf.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		// Greedy phase: take everything already waiting, no timer.
	greedy:
		for len(batch) < inf.cfg.MaxBatch {
			select {
			case r, ok := <-inf.reqs:
				if !ok {
					inf.runBatch(batch)
					return
				}
				batch = append(batch, r)
			default:
				break greedy
			}
		}
		// Deadline phase: wait up to MaxWait for the batch to fill.
		if len(batch) < inf.cfg.MaxBatch && inf.cfg.MaxWait > 0 {
			timer := time.NewTimer(inf.cfg.MaxWait)
		fill:
			for len(batch) < inf.cfg.MaxBatch {
				select {
				case r, ok := <-inf.reqs:
					if !ok {
						break fill
					}
					batch = append(batch, r)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		}
		inf.met.QueueDepth.Set(float64(len(inf.reqs)))
		inf.runBatch(batch)
		// Co-scheduling: hand the processor to resident search jobs after
		// every dispatch. Without this, a closed-loop inference ping-pong
		// keeps the dispatcher and its clients in the scheduler's handoff
		// fast path and training starves outright. The yield donates one
		// scheduling quantum per *batch*, so coalescing amortizes the cost
		// of training progress across the whole batch — this, not GEMM
		// shape, is the dominant batching win on small hosts.
		runtime.Gosched()
	}
}

// runBatch executes one padded ForwardBatch and demultiplexes the logits
// into request-owned slices (ForwardBatch's outputs are model scratch,
// invalid after the next dispatch, so the copy here is what hands each
// caller a stable result).
func (inf *Inference) runBatch(batch []*inferReq) {
	xs := inf.xs[:0]
	for _, r := range batch {
		xs = append(xs, r.x)
	}
	inf.xs = xs
	start := time.Now()
	outs, err := inf.model.ForwardBatch(xs, inf.cfg.MaxBatch)
	inf.met.Batches.Inc()
	inf.met.BatchSize.Observe(float64(len(batch)))
	inf.met.BatchSeconds.Observe(time.Since(start).Seconds())
	for i, r := range batch {
		if err != nil {
			r.err = err
		} else {
			r.logits = append([]float64(nil), outs[i].Data()...)
		}
		close(r.done)
	}
}
