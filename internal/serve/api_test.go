package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fedrlnas/internal/scenario"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf)
}

// TestV1APIAndScenarioJob pins the versioned surface: every route lives
// under /v1/, the unversioned paths stay as deprecated aliases serving the
// same state, and POST /v1/jobs accepts a full scenario.Spec.
func TestV1APIAndScenarioJob(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{CheckpointDir: dir, DefaultBatch: BatchConfig{MaxBatch: 4, MaxWait: time.Millisecond}})
	ts := httptest.NewServer(s.APIHandler())
	defer ts.Close()

	// A job created through /v1 with a personalized mixed-population
	// scenario.
	var created JobStatus
	postJSON(t, ts.URL+"/v1/jobs", JobSpec{
		Scenario: &scenario.Spec{
			Population: []scenario.Share{
				{Profile: "phone-urban", Fraction: 0.7},
				{Profile: "iot-rural", Fraction: 0.3},
			},
			Personalize: true,
		},
	}, http.StatusCreated, &created)
	if created.ID == "" {
		t.Fatal("no job id from /v1/jobs")
	}

	// The same job is visible from both surfaces.
	for _, base := range []string{ts.URL + "/v1", ts.URL} {
		var listed []JobStatus
		getJSON(t, base+"/jobs", &listed)
		if len(listed) != 1 || listed[0].ID != created.ID {
			t.Fatalf("%s/jobs listed %+v", base, listed)
		}
		var st JobStatus
		getJSON(t, base+"/jobs/"+created.ID, &st)
		if st.ID != created.ID {
			t.Fatalf("%s status %+v", base, st)
		}
	}

	// Actions work through /v1 too.
	var st JobStatus
	postJSON(t, ts.URL+"/v1/jobs/"+created.ID+"/pause", struct{}{}, http.StatusOK, &st)
	if st.State != "paused" {
		t.Fatalf("state %s after /v1 pause", st.State)
	}
	postJSON(t, ts.URL+"/v1/jobs/"+created.ID+"/cancel", struct{}{}, http.StatusOK, &st)

	// An invalid scenario is rejected with 400, not accepted or 500.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		jsonBody(t, JobSpec{Scenario: &scenario.Spec{
			Population: []scenario.Share{{Profile: "no-such-profile"}},
		}}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid scenario -> %d, want 400", resp.StatusCode)
	}
}
