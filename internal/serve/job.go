package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/search"
)

// JobState is one node of the job lifecycle state machine:
//
//	Pending ─→ Running ⇄ Paused
//	   │          │ │ \
//	   ↓          ↓ ↓  ─→ Suspended (drain: checkpointed, process exiting)
//	Failed   Completed Cancelled
//
// Pending covers construction (dataset generation, supernet init, optional
// checkpoint load) on the job goroutine, so job creation returns
// immediately even for large configs. Paused, Suspended, Cancelled and
// Completed all imply "a checkpoint exists" when the job has a checkpoint
// path; Failed implies the error is recorded.
type JobState int32

const (
	JobPending JobState = iota
	JobRunning
	JobPaused
	JobCompleted
	JobCancelled
	JobFailed
	JobSuspended
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobPaused:
		return "paused"
	case JobCompleted:
		return "completed"
	case JobCancelled:
		return "cancelled"
	case JobFailed:
		return "failed"
	case JobSuspended:
		return "suspended"
	}
	return "unknown"
}

// Terminal reports whether the state machine can never leave s.
func (s JobState) Terminal() bool {
	switch s {
	case JobCompleted, JobCancelled, JobFailed, JobSuspended:
		return true
	}
	return false
}

type cmdKind int

const (
	cmdPause cmdKind = iota
	cmdResume
	cmdCancel
	cmdSuspend
	cmdCheckpoint
	cmdDerive
)

type jobCmd struct {
	kind  cmdKind
	reply chan jobReply
}

type jobReply struct {
	geno nas.Genotype
	err  error
}

// Job is one resident search: a Search owned by a dedicated goroutine that
// steps rounds and handles lifecycle commands between them. All external
// access goes through commands while the goroutine lives and through the
// post-done mutex after it exits, so the Search itself is never shared.
type Job struct {
	ID string

	cfg       search.Config
	ckptPath  string
	ckptEvery int
	resume    string
	met       *Metrics

	cmds chan jobCmd
	done chan struct{}

	state   atomic.Int32
	round   atomic.Int64
	total   atomic.Int64
	accBits atomic.Uint64

	// mu guards s and err once done is closed (the loop goroutine is gone
	// and multiple API goroutines may inspect the corpse concurrently).
	mu  sync.Mutex
	s   *search.Search
	err error
}

// JobStatus is the API-facing snapshot of a job.
type JobStatus struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Round      int     `json:"round"`
	Total      int     `json:"total"`
	Accuracy   float64 `json:"accuracy"`
	Checkpoint string  `json:"checkpoint,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// newJob constructs and starts a job; the heavy build happens on the job
// goroutine.
func newJob(id string, cfg search.Config, ckptPath string, ckptEvery int, resume string, met *Metrics) *Job {
	j := &Job{
		ID:        id,
		cfg:       cfg,
		ckptPath:  ckptPath,
		ckptEvery: ckptEvery,
		resume:    resume,
		met:       met,
	}
	j.cmds = make(chan jobCmd)
	j.done = make(chan struct{})
	j.state.Store(int32(JobPending))
	met.JobsTotal.Inc()
	met.JobsRunning.Set(met.JobsRunning.Value() + 1)
	go j.loop()
	return j
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return JobState(j.state.Load()) }

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	st := JobStatus{
		ID:         j.ID,
		State:      j.State().String(),
		Round:      int(j.round.Load()),
		Total:      int(j.total.Load()),
		Accuracy:   math.Float64frombits(j.accBits.Load()),
		Checkpoint: j.ckptPath,
	}
	select {
	case <-j.done:
		j.mu.Lock()
		if j.err != nil {
			st.Error = j.err.Error()
		}
		j.mu.Unlock()
	default:
	}
	return st
}

// Pause checkpoints the job (when it has a checkpoint path) and halts
// stepping until Resume.
func (j *Job) Pause() error { return j.command(cmdPause) }

// Resume continues a paused job.
func (j *Job) Resume() error { return j.command(cmdResume) }

// Cancel checkpoints (best effort) and terminates the job.
func (j *Job) Cancel() error { return j.command(cmdCancel) }

// Checkpoint writes a checkpoint now, between rounds.
func (j *Job) Checkpoint() error { return j.command(cmdCheckpoint) }

// Suspend is the drain path: checkpoint, stop the loop, mark Suspended. The
// job can be revived in a new process by creating a job with Resume set to
// its checkpoint path.
func (j *Job) Suspend() error { return j.command(cmdSuspend) }

// Derive returns the job's current argmax genotype. Safe at any state past
// Pending: while the loop runs it executes between rounds; after it exits,
// on the caller's goroutine.
func (j *Job) Derive() (nas.Genotype, error) {
	rep, err := j.send(jobCmd{kind: cmdDerive, reply: make(chan jobReply, 1)})
	if err != nil {
		return nas.Genotype{}, err
	}
	return rep.geno, rep.err
}

// Config returns the job's search configuration (the serving path needs
// cfg.Net to materialize derived models).
func (j *Job) Config() search.Config { return j.cfg }

// Done exposes loop termination (tests and Drain wait on it).
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) command(kind cmdKind) error {
	rep, err := j.send(jobCmd{kind: kind, reply: make(chan jobReply, 1)})
	if err != nil {
		return err
	}
	return rep.err
}

// send delivers a command to the loop, or — once the loop has exited —
// executes it directly under the post-done mutex. The select on done closes
// the race where the loop exits while a sender waits: the sender then falls
// through to the direct path instead of blocking forever.
func (j *Job) send(cmd jobCmd) (jobReply, error) {
	select {
	case j.cmds <- cmd:
		return <-cmd.reply, nil
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.s == nil {
			return jobReply{}, fmt.Errorf("serve: job %s never initialized", j.ID)
		}
		return j.handle(cmd.kind, false), nil
	}
}

// loop owns the Search: build it, then alternate command handling with
// StepRound until a terminal state.
func (j *Job) loop() {
	defer func() {
		j.met.JobsRunning.Set(j.met.JobsRunning.Value() - 1)
		close(j.done)
	}()
	s, err := search.New(j.cfg)
	if err == nil && j.resume != "" {
		err = s.LoadCheckpoint(j.resume)
	}
	j.mu.Lock()
	j.s = s
	j.mu.Unlock()
	if err != nil {
		j.fail(err)
		return
	}
	j.total.Store(int64(s.TotalRounds()))
	j.round.Store(int64(s.Round()))
	j.state.Store(int32(JobRunning))
	for {
		st := j.State()
		if st.Terminal() {
			return
		}
		if st == JobPaused {
			cmd := <-j.cmds
			cmd.reply <- j.handle(cmd.kind, true)
			continue
		}
		select {
		case cmd := <-j.cmds:
			cmd.reply <- j.handle(cmd.kind, true)
			continue
		default:
		}
		info, err := j.s.StepRound()
		if err != nil {
			j.fail(err)
			return
		}
		j.met.JobRounds.Inc()
		j.round.Store(int64(j.s.Round()))
		j.accBits.Store(math.Float64bits(info.Accuracy))
		if info.Done {
			if err := j.checkpointNow(); err != nil {
				j.fail(err)
				return
			}
			j.state.Store(int32(JobCompleted))
			return
		}
		if j.ckptPath != "" && j.ckptEvery > 0 && j.s.Round()%j.ckptEvery == 0 {
			if err := j.checkpointNow(); err != nil {
				j.fail(err)
				return
			}
		}
	}
}

// handle executes one command. It runs on the loop goroutine while the loop
// lives and on the caller's (under j.mu) afterwards; `live` distinguishes
// the two, because lifecycle transitions are only legal on a live loop.
func (j *Job) handle(kind cmdKind, live bool) jobReply {
	st := j.State()
	switch kind {
	case cmdDerive:
		return jobReply{geno: j.s.Derive()}
	case cmdCheckpoint:
		return jobReply{err: j.checkpointNow()}
	case cmdPause:
		if !live || st != JobRunning {
			return jobReply{err: fmt.Errorf("serve: cannot pause %s job", st)}
		}
		if err := j.checkpointNow(); err != nil {
			return jobReply{err: err}
		}
		j.state.Store(int32(JobPaused))
		return jobReply{}
	case cmdResume:
		if !live || st != JobPaused {
			return jobReply{err: fmt.Errorf("serve: cannot resume %s job", st)}
		}
		j.state.Store(int32(JobRunning))
		return jobReply{}
	case cmdCancel:
		if !live {
			return jobReply{err: fmt.Errorf("serve: cannot cancel %s job", st)}
		}
		// Best-effort checkpoint: cancellation still leaves a resumable file.
		_ = j.checkpointNow()
		j.state.Store(int32(JobCancelled))
		return jobReply{}
	case cmdSuspend:
		if !live {
			return jobReply{err: fmt.Errorf("serve: cannot suspend %s job", st)}
		}
		if err := j.checkpointNow(); err != nil {
			return jobReply{err: err}
		}
		j.state.Store(int32(JobSuspended))
		return jobReply{}
	}
	return jobReply{err: fmt.Errorf("serve: unknown command %d", kind)}
}

func (j *Job) checkpointNow() error {
	if j.ckptPath == "" {
		return nil
	}
	return j.s.SaveCheckpoint(j.ckptPath)
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.err = err
	j.mu.Unlock()
	j.state.Store(int32(JobFailed))
}
