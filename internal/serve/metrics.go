// Package serve is the resident model-search service: a Server hosts
// concurrent search jobs (create / pause / resume / cancel / checkpoint
// over an HTTP JSON API layered on the telemetry debug mux) alongside
// batched inference on derived genotypes. The serving path's perf headline
// is the admission queue in batch.go: concurrent single-example requests
// coalesce into one padded batch that runs a single ForwardBatch through
// the GEMM kernels, then demultiplexes — the batched rows are bit-identical
// to per-request forwards (see nas.ForwardBatch), so batching changes
// throughput, never answers.
package serve

import "fedrlnas/internal/telemetry"

// Metrics is the serving-plane instrument set, registered on the same
// Registry the debug mux exports at /metrics.
type Metrics struct {
	// Requests counts admitted inference requests; Rejected counts
	// requests refused because the server was draining or the model was
	// closed.
	Requests *telemetry.Counter
	Rejected *telemetry.Counter
	// Batches counts dispatched batches; BatchSize observes how full each
	// was (the micro-batching policy's effectiveness at a glance).
	Batches   *telemetry.Counter
	BatchSize *telemetry.Histogram
	// InferSeconds observes end-to-end request latency (queueing + batch
	// wait + forward); BatchSeconds observes the forward alone.
	InferSeconds *telemetry.Histogram
	BatchSeconds *telemetry.Histogram
	// QueueDepth gauges the admission queue backlog at dispatch time.
	QueueDepth *telemetry.Gauge
	// JobsRunning gauges live (non-terminal) jobs; JobsTotal counts every
	// job ever created; JobRounds counts search rounds stepped across all
	// jobs.
	JobsRunning *telemetry.Gauge
	JobsTotal   *telemetry.Counter
	JobRounds   *telemetry.Counter
}

// NewMetrics registers the serving metrics on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Requests:     reg.Counter("serve_requests_total", "Admitted inference requests."),
		Rejected:     reg.Counter("serve_rejected_total", "Inference requests refused (draining or model closed)."),
		Batches:      reg.Counter("serve_batches_total", "Dispatched inference batches."),
		BatchSize:    reg.Histogram("serve_batch_size", "Requests coalesced per dispatched batch."),
		InferSeconds: reg.Histogram("serve_infer_seconds", "End-to-end inference request latency in seconds."),
		BatchSeconds: reg.Histogram("serve_batch_seconds", "Batched forward duration in seconds."),
		QueueDepth:   reg.Gauge("serve_queue_depth", "Admission queue backlog observed at dispatch."),
		JobsRunning:  reg.Gauge("serve_jobs_running", "Search jobs in a non-terminal state."),
		JobsTotal:    reg.Counter("serve_jobs_total", "Search jobs ever created."),
		JobRounds:    reg.Counter("serve_job_rounds_total", "Search rounds stepped across all jobs."),
	}
}
