package fed

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/cohort"
	"fedrlnas/internal/data"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	spec := data.Spec{
		Name: "fedtest", NumClasses: 3, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 24, TestPerClass: 8, Noise: 0.6, Confusion: 0.2, Seed: 77,
	}
	ds, err := data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func tinyModel(rng *rand.Rand, classes int) *SequentialModel {
	return &SequentialModel{Net: nn.NewSequential(
		nn.NewConv2D("c1", rng, 2, 6, 3, nn.ConvOpts{Pad: 1}),
		nn.NewBatchNorm2D("bn1", 6),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewLinear("fc", rng, 6, classes),
	)}
}

func TestBuildParticipants(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(1))
	part, err := data.IIDPartition(ds.NumTrain(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("built %d participants", len(ps))
	}
	total := 0
	for k, p := range ps {
		if p.ID != k || p.NumSamples == 0 || p.SpeedFactor != 1 {
			t.Errorf("participant %d malformed: %+v", k, p)
		}
		total += p.NumSamples
	}
	if total != ds.NumTrain() {
		t.Errorf("shards cover %d samples, want %d", total, ds.NumTrain())
	}
}

func TestAttachTraces(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(2))
	part, err := data.IIDPartition(ds.NumTrain(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 9)
	if err != nil {
		t.Fatal(err)
	}
	env := nettrace.Environment{Name: "x", Regimes: []nettrace.Regime{nettrace.Car}}
	traces, err := env.ParticipantTraces(3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachTraces(ps, traces); err != nil {
		t.Fatal(err)
	}
	if len(ps[2].Trace.Mbps) != 10 {
		t.Error("trace not attached")
	}
	if err := AttachTraces(ps, traces[:1]); err == nil {
		t.Error("expected error for count mismatch")
	}
}

func TestEvaluateBounds(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(3))
	m := tinyModel(rng, 3)
	acc := Evaluate(m, ds, 8)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

func TestComputeSecondsScaling(t *testing.T) {
	p := &Participant{SpeedFactor: 1}
	slow := &Participant{SpeedFactor: 4}
	base := p.ComputeSeconds(1000, 32)
	if base <= 0 {
		t.Fatal("compute time must be positive")
	}
	if got := slow.ComputeSeconds(1000, 32); got != 4*base {
		t.Errorf("speed factor scaling: %v vs %v", got, base)
	}
	if got := p.ComputeSeconds(2000, 32); got != 2*base {
		t.Errorf("param scaling: %v vs %v", got, base)
	}
}

func TestFedAvgConfigValidation(t *testing.T) {
	good := DefaultFedAvgConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Rounds = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero rounds")
	}
	bad = good
	bad.LR = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero LR")
	}
}

func TestFedAvgTrainsAndImproves(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(4))
	part, err := data.IIDPartition(ds.NumTrain(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyModel(rng, 3)
	before := Evaluate(m, ds, 16)
	cfg := DefaultFedAvgConfig()
	cfg.Rounds = 30
	cfg.LocalSteps = 2
	cfg.BatchSize = 8
	res, err := FedAvg(m, ds, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= before || res.FinalAcc < 0.72 {
		t.Errorf("FedAvg did not learn: before %.3f after %.3f", before, res.FinalAcc)
	}
	if res.TrainAcc.Len() != cfg.Rounds {
		t.Errorf("train curve has %d points", res.TrainAcc.Len())
	}
	if res.ValAcc.Len() == 0 {
		t.Error("no validation points recorded")
	}
	if len(res.RoundSeconds) != cfg.Rounds || res.TotalSeconds <= 0 {
		t.Error("round timing not recorded")
	}
}

func TestFedAvgDeterministic(t *testing.T) {
	run := func() float64 {
		ds := testDataset(t)
		rng := rand.New(rand.NewSource(5))
		part, err := data.IIDPartition(ds.NumTrain(), 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := BuildParticipants(ds, part, 13)
		if err != nil {
			t.Fatal(err)
		}
		m := tinyModel(rand.New(rand.NewSource(6)), 3)
		cfg := DefaultFedAvgConfig()
		cfg.Rounds = 3
		cfg.BatchSize = 8
		res, err := FedAvg(m, ds, ps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAcc
	}
	if run() != run() {
		t.Error("FedAvg must be deterministic for fixed seeds")
	}
}

func TestFedAvgValidatesInputs(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(7))
	m := tinyModel(rng, 3)
	if _, err := FedAvg(m, ds, nil, DefaultFedAvgConfig()); err == nil {
		t.Error("expected error for no participants")
	}
	bad := DefaultFedAvgConfig()
	bad.BatchSize = 0
	part, err := data.IIDPartition(ds.NumTrain(), 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FedAvg(m, ds, ps, bad); err == nil {
		t.Error("expected error for invalid config")
	}
}

// FedAvg with one participant and LocalSteps=1 must match centralized SGD
// on the same batches (the averaging degenerates to plain training).
func TestFedAvgSingleParticipantMatchesCentralized(t *testing.T) {
	ds := testDataset(t)
	part := data.Partition{Indices: [][]int{seq(ds.NumTrain())}}

	// Federated run.
	psF, err := BuildParticipants(ds, part, 21)
	if err != nil {
		t.Fatal(err)
	}
	mF := tinyModel(rand.New(rand.NewSource(8)), 3)
	cfg := FedAvgConfig{Rounds: 4, LocalSteps: 1, BatchSize: 8, LR: 0.05, Momentum: 0, WeightDecay: 0, GradClip: 0, EvalEvery: 0}
	if _, err := FedAvg(mF, ds, psF, cfg); err != nil {
		t.Fatal(err)
	}

	// Centralized run with identical init, RNG stream and batches.
	psC, err := BuildParticipants(ds, part, 21)
	if err != nil {
		t.Fatal(err)
	}
	mC := tinyModel(rand.New(rand.NewSource(8)), 3)
	opt := nn.NewSGD(0.05, 0, 0, 0)
	for step := 0; step < 4; step++ {
		batch := psC[0].Batcher.Next(8)
		x, y := ds.Gather(batch)
		x = data.AugmentConfig{}.Apply(x, psC[0].RNG)
		nn.ZeroGrads(mC.Params())
		res, err := nn.CrossEntropy(mC.Forward(x), y)
		if err != nil {
			t.Fatal(err)
		}
		mC.Backward(res.GradLogits)
		opt.Step(mC.Params())
	}
	for i, p := range mF.Params() {
		if !p.Value.AllClose(mC.Params()[i].Value, 1e-9) {
			t.Fatalf("param %s diverged between FedAvg(K=1) and centralized", p.Name)
		}
	}
}

func TestBwAtDefaults(t *testing.T) {
	p := &Participant{}
	if got := bwAt(p, 0); got != 100 {
		t.Errorf("default bandwidth %v, want 100", got)
	}
	p.Trace = nettrace.Trace{Mbps: []float64{5}}
	if got := bwAt(p, 3); got != 5 {
		t.Errorf("traced bandwidth %v, want 5", got)
	}
}

func TestSequentialModelInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := tinyModel(rng, 3)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	logits := m.Forward(x)
	if logits.Dim(1) != 3 {
		t.Fatalf("logits shape %v", logits.Shape())
	}
	m.Backward(tensor.New(2, 3))
	if len(m.Params()) == 0 {
		t.Error("no params exposed")
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSelectCohort(t *testing.T) {
	parts := make([]*Participant, 10)
	for i := range parts {
		parts[i] = &Participant{ID: i, NumSamples: 1}
	}
	newSampler := func(fraction float64) *cohort.Sampler {
		s, err := cohort.New(1, len(parts), cohort.FractionSize(len(parts), fraction))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if got := selectCohort(parts, newSampler(0), 0); len(got) != 10 {
		t.Errorf("fraction 0 selected %d, want all", len(got))
	}
	if got := selectCohort(parts, newSampler(1), 0); len(got) != 10 {
		t.Errorf("fraction 1 selected %d, want all", len(got))
	}
	got := selectCohort(parts, newSampler(0.3), 0)
	if len(got) != 3 {
		t.Errorf("fraction 0.3 selected %d, want 3", len(got))
	}
	lastID := -1
	for _, p := range got {
		if p.ID <= lastID {
			t.Fatalf("selection not ascending/unique: %v then %v", lastID, p.ID)
		}
		lastID = p.ID
	}
	// The schedule is a pure function of (seed, round): rounds differ,
	// re-queries agree.
	s := newSampler(0.3)
	a, b := selectCohort(parts, s, 4), selectCohort(parts, s, 4)
	if len(a) != len(b) {
		t.Fatal("re-query changed cohort size")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("re-querying a round changed its cohort")
		}
	}
	tiny, err := cohort.New(1, 2, cohort.FractionSize(2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if got := selectCohort(parts[:2], tiny, 0); len(got) != 1 {
		t.Errorf("tiny fraction selected %d, want at least 1", len(got))
	}
}

func TestPopulationLazyMaterialization(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(3))
	part, err := data.IIDPartition(ds.NumTrain(), 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	pop := NewPopulation(part, 9)
	if pop.Len() != 8 || pop.Materialized() != 0 {
		t.Fatalf("fresh population: len %d materialized %d", pop.Len(), pop.Materialized())
	}
	p5, err := pop.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if p5.ID != 5 || pop.Materialized() != 1 {
		t.Fatalf("Get(5): id %d materialized %d", p5.ID, pop.Materialized())
	}
	if again, _ := pop.Get(5); again != p5 {
		t.Fatal("Get(5) rebuilt an existing participant")
	}
	if _, err := pop.Get(8); err == nil {
		t.Fatal("out-of-range Get accepted")
	}
	if _, err := pop.Get(-1); err == nil {
		t.Fatal("negative Get accepted")
	}

	// A lazily built participant must be stream-identical to its eagerly
	// built twin: same first batches, same RNG draws.
	eager, err := BuildParticipants(ds, part, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a, b := p5.Batcher.Next(4), eager[5].Batcher.Next(4)
		if len(a) != len(b) {
			t.Fatal("batch size mismatch")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("batch %d diverges: %v vs %v", i, a, b)
			}
		}
	}
	if p5.RNG.Int63() != eager[5].RNG.Int63() {
		t.Fatal("lazy RNG stream diverges from eager")
	}

	if all, err := pop.All(); err != nil || len(all) != 8 || pop.Materialized() != 8 {
		t.Fatalf("All: err %v len %d materialized %d", err, len(all), pop.Materialized())
	}
}

func TestPopulationSpeedAndTraceHooks(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(3))
	part, err := data.IIDPartition(ds.NumTrain(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	pop := NewPopulation(part, 9)
	early, err := pop.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	pop.SetSpeedFn(func(k int) float64 { return float64(k) + 2 })
	pop.SetTraceFn(func(k int) nettrace.Trace {
		return nettrace.Trace{Mbps: []float64{float64(k) + 1}}
	})
	if early.SpeedFactor != 2 {
		t.Fatalf("hook not applied retroactively: speed %v", early.SpeedFactor)
	}
	late, err := pop.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if late.SpeedFactor != 5 || late.Trace.At(0) != 4 {
		t.Fatalf("hook not applied lazily: speed %v trace %v", late.SpeedFactor, late.Trace.At(0))
	}
}

func TestFedAvgWithClientFraction(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(31))
	part, err := data.IIDPartition(ds.NumTrain(), 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 32)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyModel(rng, 3)
	cfg := DefaultFedAvgConfig()
	cfg.Rounds = 6
	cfg.BatchSize = 8
	cfg.ClientFraction = 0.5
	res, err := FedAvg(m, ds, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAcc.Len() != 6 {
		t.Errorf("curve %d points", res.TrainAcc.Len())
	}
	bad := cfg
	bad.ClientFraction = 1.5
	if _, err := FedAvg(m, ds, ps, bad); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestFedSGDTrains(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(41))
	part, err := data.IIDPartition(ds.NumTrain(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 42)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyModel(rng, 3)
	before := Evaluate(m, ds, 16)
	cfg := DefaultFedSGDConfig()
	cfg.Rounds = 40
	cfg.BatchSize = 8
	curve, err := FedSGD(m, ds, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if curve.Len() != 40 {
		t.Fatalf("curve %d points", curve.Len())
	}
	after := Evaluate(m, ds, 16)
	if after <= before {
		t.Errorf("FedSGD did not improve: %.3f -> %.3f", before, after)
	}
}

func TestFedSGDValidation(t *testing.T) {
	ds := testDataset(t)
	m := tinyModel(rand.New(rand.NewSource(43)), 3)
	if _, err := FedSGD(m, ds, nil, DefaultFedSGDConfig()); err == nil {
		t.Error("expected error for no participants")
	}
	bad := DefaultFedSGDConfig()
	bad.Rounds = 0
	part, err := data.IIDPartition(ds.NumTrain(), 2, rand.New(rand.NewSource(44)))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := BuildParticipants(ds, part, 45)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FedSGD(m, ds, ps, bad); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestEvaluateTrain(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(51))
	m := tinyModel(rng, 3)
	acc := EvaluateTrain(m, ds, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if acc < 0 || acc > 1 {
		t.Fatalf("train accuracy %v out of range", acc)
	}
	if got := EvaluateTrain(m, ds, nil); got != 0 {
		t.Errorf("empty index set accuracy %v, want 0", got)
	}
}

// Evaluate must restore training mode afterwards (batch norm statistics
// must keep updating in subsequent training steps).
func TestEvaluateRestoresTrainingMode(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(52))
	m := tinyModel(rng, 3)
	x, _ := ds.Gather([]int{0, 1, 2, 3})
	m.SetTraining(true)
	trainOut := m.Forward(x)
	Evaluate(m, ds, 8)
	trainOut2 := m.Forward(x)
	// In training mode batch-stat BN gives identical outputs for identical
	// inputs; if Evaluate left the model in eval mode, the outputs would
	// use running stats and differ from the batch-stat result.
	if !trainOut.AllClose(trainOut2, 1e-9) {
		t.Error("Evaluate did not restore training mode")
	}
}
