package fed

import (
	"fmt"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nettrace"
)

// Population is a lazy participant registry: it enrolls every shard of a
// partition up front but materializes a Participant (its RNG, its copied
// and shuffled batch pool) only when that participant is first requested.
// With per-round cohort sampling, an enrolled-but-never-sampled client
// costs one nil pointer — the registry holds 10,000 enrollments as cheaply
// as 10 — while a sampled client's state persists once built, so its
// batcher epoch position and RNG stream advance across the rounds it
// participates in exactly as an eagerly built participant's would.
//
// Determinism: participant k's RNG is seeded by seed + k·7919 regardless
// of when (or whether) k is materialized, and the batcher shuffle draws
// only from that private RNG, so lazily built populations are
// participant-for-participant identical to eager ones. BuildParticipants
// is now a thin wrapper that materializes everything immediately.
type Population struct {
	partition data.Partition
	seed      int64
	parts     []*Participant
	built     int

	speedFn func(k int) float64
	traceFn func(k int) nettrace.Trace
	churnFn func(k int) float64
}

// NewPopulation enrolls one participant per partition shard without
// materializing any of them.
func NewPopulation(partition data.Partition, seed int64) *Population {
	return &Population{
		partition: partition,
		seed:      seed,
		parts:     make([]*Participant, partition.NumParticipants()),
	}
}

// Len returns the enrolled population size K.
func (p *Population) Len() int { return len(p.parts) }

// Materialized returns how many participants have been built so far (a
// memory-model observable: it must track cohort coverage, not K).
func (p *Population) Materialized() int { return p.built }

// Get returns participant k, building it on first access.
func (p *Population) Get(k int) (*Participant, error) {
	if k < 0 || k >= len(p.parts) {
		return nil, fmt.Errorf("fed: participant %d outside population of %d", k, len(p.parts))
	}
	if p.parts[k] != nil {
		return p.parts[k], nil
	}
	part, err := buildParticipant(p.partition.Indices[k], k, p.seed)
	if err != nil {
		return nil, err
	}
	if p.speedFn != nil {
		part.SpeedFactor = p.speedFn(k)
	}
	if p.traceFn != nil {
		part.Trace = p.traceFn(k)
	}
	if p.churnFn != nil {
		part.ChurnProb = p.churnFn(k)
	}
	p.parts[k] = part
	p.built++
	return part, nil
}

// All materializes and returns the full population in ID order (the
// legacy eager path; callers that can iterate a cohort instead should).
func (p *Population) All() ([]*Participant, error) {
	for k := range p.parts {
		if _, err := p.Get(k); err != nil {
			return nil, err
		}
	}
	return p.parts, nil
}

// SetSpeedFn installs a per-participant compute speed factor, applied to
// every already-materialized participant and to all future ones. A nil fn
// restores the default factor of 1 for future builds only.
func (p *Population) SetSpeedFn(fn func(k int) float64) {
	p.speedFn = fn
	if fn == nil {
		return
	}
	for k, part := range p.parts {
		if part != nil {
			part.SpeedFactor = fn(k)
		}
	}
}

// SetTraceFn installs a per-participant bandwidth trace source, applied
// like SetSpeedFn.
func (p *Population) SetTraceFn(fn func(k int) nettrace.Trace) {
	p.traceFn = fn
	if fn == nil {
		return
	}
	for k, part := range p.parts {
		if part != nil {
			part.Trace = fn(k)
		}
	}
}

// SetChurnFn installs a per-participant availability schedule (the
// scenario profile's churn probability), applied like SetSpeedFn.
func (p *Population) SetChurnFn(fn func(k int) float64) {
	p.churnFn = fn
	if fn == nil {
		return
	}
	for k, part := range p.parts {
		if part != nil {
			part.ChurnProb = fn(k)
		}
	}
}

// buildParticipant constructs participant k's state from its shard.
func buildParticipant(indices []int, k int, seed int64) (*Participant, error) {
	rng, src := newParticipantRNG(seed, k)
	b, err := data.NewBatcher(indices, rng)
	if err != nil {
		return nil, fmt.Errorf("participant %d: %w", k, err)
	}
	return &Participant{
		ID:          k,
		Batcher:     b,
		RNG:         rng,
		Src:         src,
		SpeedFactor: 1,
		NumSamples:  len(indices),
	}, nil
}

// ParticipantState is the resumable stream state of one materialized
// participant — everything beyond (seed, id) a checkpoint must carry: the
// private RNG position, and the batcher's current shuffle order and epoch
// cursor (the shuffle VALUES matter, not just the RNG position, because
// the pool order is the residue of draws already consumed).
type ParticipantState struct {
	ID     int
	RNGPos uint64
	Pool   []int
	Pos    int
}

// States captures the state of every materialized participant in ID order.
// Never-sampled enrollees need nothing: they materialize deterministically
// from (seed, id) whenever first drawn.
func (p *Population) States() []ParticipantState {
	var out []ParticipantState
	for k, part := range p.parts {
		if part == nil {
			continue
		}
		pool, pos := part.Batcher.State()
		out = append(out, ParticipantState{ID: k, RNGPos: part.Src.Pos(), Pool: pool, Pos: pos})
	}
	return out
}

// RestoreStates materializes each listed participant and rewinds its RNG
// stream and batcher to the captured position, making the population
// stream-for-stream identical to the one that produced the states.
func (p *Population) RestoreStates(states []ParticipantState) error {
	for _, st := range states {
		part, err := p.Get(st.ID)
		if err != nil {
			return err
		}
		part.Src.Restore(st.RNGPos)
		if err := part.Batcher.RestoreState(st.Pool, st.Pos); err != nil {
			return fmt.Errorf("participant %d: %w", st.ID, err)
		}
	}
	return nil
}
