package fed

import (
	"fmt"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
)

// batchNormer is implemented by models that can enumerate their batch-norm
// layers in deterministic structural order (nas.FixedModel, SequentialModel).
// The parallel trainers need it to replay replica batch statistics onto the
// primary model in participant order — the one side effect of a local step
// that is not captured by parameter deltas. See DESIGN.md §Concurrency.
type batchNormer interface {
	BatchNorms() []*nn.BatchNorm2D
}

// runner fans a trainer's per-participant work out across a worker pool,
// one private model replica per worker slot. A runner with no replicas
// (reps == nil) marks the sequential path: the trainer falls back to its
// original single-model loop, which the replica path reproduces
// bit-identically (pure arithmetic on restored snapshots, ordered merge).
type runner struct {
	pool    *parallel.Pool
	primary Model
	reps    []Model

	primaryBNs []*nn.BatchNorm2D
	repBNs     [][]*nn.BatchNorm2D
}

// newRunner builds the replica set for a trainer run. newReplica may be nil
// (sequential path); when set it must produce models structurally identical
// to primary. maxTasks caps the replica count (more could never be in
// flight). The primary must expose its batch-norm layers for the ordered
// stat replay; a primary that cannot keeps the sequential path.
func newRunner(primary Model, workers, maxTasks int, newReplica func() Model) (*runner, error) {
	r := &runner{primary: primary}
	pbn, ok := primary.(batchNormer)
	if newReplica == nil || !ok {
		return r, nil
	}
	r.pool = parallel.New(workers)
	n := r.pool.Workers()
	if n > maxTasks {
		n = maxTasks
	}
	r.primaryBNs = pbn.BatchNorms()
	primaryParams := primary.Params()
	for i := 0; i < n; i++ {
		m := newReplica()
		if m == nil {
			// Factory declined; train sequentially.
			r.reps, r.repBNs = nil, nil
			return r, nil
		}
		mbn, ok := m.(batchNormer)
		if !ok {
			return nil, fmt.Errorf("fed: replica %d cannot enumerate batch norms", i)
		}
		bns := mbn.BatchNorms()
		if len(bns) != len(r.primaryBNs) {
			return nil, fmt.Errorf("fed: replica %d has %d batch norms, primary %d",
				i, len(bns), len(r.primaryBNs))
		}
		if err := checkSameStructure(m.Params(), primaryParams, i); err != nil {
			return nil, err
		}
		m.SetTraining(true)
		for _, bn := range bns {
			bn.SetStatCapture(true)
		}
		r.reps = append(r.reps, m)
		r.repBNs = append(r.repBNs, bns)
	}
	return r, nil
}

// checkSameStructure verifies a replica's parameters are index-aligned and
// shape-identical with the primary's, so snapshot restores and delta merges
// are positionally exact.
func checkSameStructure(rep, primary []*nn.Param, i int) error {
	if len(rep) != len(primary) {
		return fmt.Errorf("fed: replica %d has %d params, primary %d", i, len(rep), len(primary))
	}
	for j := range rep {
		rs, ps := rep[j].Value.Shape(), primary[j].Value.Shape()
		if len(rs) != len(ps) {
			return fmt.Errorf("fed: replica %d param %d (%s) shape mismatch", i, j, primary[j].Name)
		}
		for d := range rs {
			if rs[d] != ps[d] {
				return fmt.Errorf("fed: replica %d param %d (%s) shape %v, primary %v",
					i, j, primary[j].Name, rs, ps)
			}
		}
	}
	return nil
}

// parallelPath reports whether per-participant work runs on replicas.
func (r *runner) parallelPath() bool { return len(r.reps) > 0 }

// drainBN collects the batch statistics worker w's replica captured during
// a local step, for ordered replay via replayBN.
func (r *runner) drainBN(w int) [][]nn.BNStats {
	out := make([][]nn.BNStats, len(r.repBNs[w]))
	for i, bn := range r.repBNs[w] {
		out[i] = bn.DrainCapturedStats()
	}
	return out
}

// replayBN folds one participant's captured statistics into the primary
// model's running stats, exactly as its sequential local step would have.
func (r *runner) replayBN(stats [][]nn.BNStats) {
	for layer, recs := range stats {
		for _, rec := range recs {
			r.primaryBNs[layer].ApplyStats(rec)
		}
	}
}

// evaluate measures test accuracy like Evaluate, but fans the batches out
// across the replicas when the parallel path is active. Batch results are
// summed in batch order, so the value is bit-identical to the sequential
// Evaluate.
func (r *runner) evaluate(ds *data.Dataset, batchSize int) (float64, error) {
	if !r.parallelPath() {
		return Evaluate(r.primary, ds, batchSize), nil
	}
	n := ds.NumTest()
	if n == 0 {
		return 0, nil
	}
	snap := nn.CloneParamValues(r.primary.Params())
	for w, rep := range r.reps {
		if err := nn.RestoreParamValues(rep.Params(), snap); err != nil {
			return 0, fmt.Errorf("fed: eval replica %d: %w", w, err)
		}
		for i, bn := range r.repBNs[w] {
			bn.CopyStatsFrom(r.primaryBNs[i])
		}
		rep.SetTraining(false)
	}
	nBatches := (n + batchSize - 1) / batchSize
	corrects := make([]float64, nBatches)
	err := r.pool.Run(nBatches, func(worker, b int) error {
		start := b * batchSize
		end := start + batchSize
		if end > n {
			end = n
		}
		indices := make([]int, end-start)
		for i := range indices {
			indices[i] = start + i
		}
		x, y := ds.GatherTest(indices)
		corrects[b] = nn.Accuracy(r.reps[worker].Forward(x), y) * float64(len(y))
		return nil
	})
	for _, rep := range r.reps {
		rep.SetTraining(true)
	}
	if err != nil {
		return 0, err
	}
	correct := 0.0
	for _, c := range corrects {
		correct += c
	}
	return correct / float64(n), nil
}
