package fed

import (
	"fmt"

	"fedrlnas/internal/cohort"
	"fedrlnas/internal/data"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// FedAvgConfig configures the FedAvg trainer.
type FedAvgConfig struct {
	Rounds     int
	LocalSteps int
	BatchSize  int

	// Optimizer hyperparameters per participant (paper Table I, "P3, FL":
	// lr 0.1, momentum 0.5, weight decay 0.005).
	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64

	// EvalEvery controls how often (in rounds) test accuracy is measured;
	// 0 means only at the end.
	EvalEvery int

	// ClientFraction is the share of participants selected each round
	// (McMahan et al.'s C parameter; the paper's "select n participants
	// out of K according to a pre-defined proportion"). 0 or 1 selects
	// everyone.
	ClientFraction float64

	Augment data.AugmentConfig

	// Workers caps how many participants' local updates run concurrently;
	// 0 selects runtime.NumCPU(). Training is bit-identical at every
	// worker count (see DESIGN.md §Concurrency).
	Workers int
	// NewReplica builds a model structurally identical to the one being
	// trained, one per worker slot. nil keeps the sequential path.
	NewReplica func() Model
}

// Validate checks the configuration.
func (c FedAvgConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("fed: Rounds %d must be positive", c.Rounds)
	case c.LocalSteps <= 0:
		return fmt.Errorf("fed: LocalSteps %d must be positive", c.LocalSteps)
	case c.BatchSize <= 0:
		return fmt.Errorf("fed: BatchSize %d must be positive", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("fed: LR %v must be positive", c.LR)
	case c.ClientFraction < 0 || c.ClientFraction > 1:
		return fmt.Errorf("fed: ClientFraction %v outside [0,1]", c.ClientFraction)
	case c.Workers < 0:
		return fmt.Errorf("fed: Workers %d must be >= 0", c.Workers)
	}
	return nil
}

// DefaultFedAvgConfig returns the paper's federated P3 settings scaled to
// this substrate.
func DefaultFedAvgConfig() FedAvgConfig {
	return FedAvgConfig{
		Rounds: 30, LocalSteps: 2, BatchSize: 16,
		LR: 0.1, Momentum: 0.5, WeightDecay: 0.005, GradClip: 5,
		EvalEvery: 1,
	}
}

// FedAvgResult records a training run.
type FedAvgResult struct {
	// TrainAcc is the participant-averaged local training accuracy per
	// round (the paper's Fig. 9–11 "training accuracy").
	TrainAcc metrics.Curve
	// ValAcc is the global test accuracy per evaluated round.
	ValAcc metrics.Curve
	// FinalAcc is the test accuracy after the last round.
	FinalAcc float64
	// RoundSeconds is the virtual wall-clock of each round (max over
	// participants of compute + communication time).
	RoundSeconds []float64
	// TotalSeconds sums RoundSeconds.
	TotalSeconds float64
}

// FedAvg trains model with federated averaging (model averaging variant):
// each round every participant starts from the global weights, takes
// LocalSteps SGD steps on its shard, and the server averages the resulting
// weight deltas weighted by shard size.
func FedAvg(model Model, ds *data.Dataset, parts []*Participant, cfg FedAvgConfig) (FedAvgResult, error) {
	if err := cfg.Validate(); err != nil {
		return FedAvgResult{}, err
	}
	if len(parts) == 0 {
		return FedAvgResult{}, fmt.Errorf("fed: no participants")
	}
	res := FedAvgResult{}
	params := model.Params()
	paramCount := nn.ParamCount(params)
	payloadBytes := nn.ParamBytes(params)
	model.SetTraining(true)
	// Client selection goes through the shared per-round seeded sampler
	// (the same machinery the search engine and RPC server use for cohort
	// draws), so the schedule is a pure function of the population size and
	// round index, independent of everything else that consumes randomness.
	sampler, err := cohort.New(int64(len(parts))*7907+13, len(parts),
		cohort.FractionSize(len(parts), cfg.ClientFraction))
	if err != nil {
		return res, err
	}
	run, err := newRunner(model, cfg.Workers, len(parts), cfg.NewReplica)
	if err != nil {
		return res, err
	}

	// avgOut is one participant's contribution, merged in selection order.
	type avgOut struct {
		lastAcc float64
		delta   []*tensor.Tensor
		seconds float64
		bn      [][]nn.BNStats
	}

	for round := 0; round < cfg.Rounds; round++ {
		selected := selectCohort(parts, sampler, round)
		totalSamples := 0
		for _, p := range selected {
			totalSamples += p.NumSamples
		}
		global := nn.CloneParamValues(params)
		weightedDelta := make([]*tensor.Tensor, len(params))
		for i, p := range params {
			weightedDelta[i] = tensor.New(p.Value.Shape()...)
		}
		roundTrainAcc := 0.0
		roundSeconds := 0.0

		if run.parallelPath() {
			// Fan the selected participants' local updates out across the
			// worker replicas; each task writes only its own outs slot, and
			// the merge below folds them back in selection order, so the
			// result is bit-identical to the sequential branch.
			outs := make([]avgOut, len(selected))
			err := run.pool.Run(len(selected), func(worker, j int) error {
				part := selected[j]
				rep := run.reps[worker]
				rparams := rep.Params()
				if err := nn.RestoreParamValues(rparams, global); err != nil {
					return fmt.Errorf("participant %d: %w", part.ID, err)
				}
				opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay, cfg.GradClip)
				lastAcc := 0.0
				for step := 0; step < cfg.LocalSteps; step++ {
					batch := part.Batcher.Next(cfg.BatchSize)
					x, y := ds.Gather(batch)
					x = cfg.Augment.Apply(x, part.RNG)
					nn.ZeroGrads(rparams)
					lossRes, err := nn.CrossEntropy(rep.Forward(x), y)
					if err != nil {
						return fmt.Errorf("participant %d: %w", part.ID, err)
					}
					rep.Backward(lossRes.GradLogits)
					opt.Step(rparams)
					lastAcc = lossRes.Accuracy
				}
				delta := make([]*tensor.Tensor, len(rparams))
				for i, p := range rparams {
					delta[i] = p.Value.Sub(global[i])
				}
				comm := 2 * nettrace.TransferSeconds(payloadBytes, bwAt(part, round))
				comp := float64(cfg.LocalSteps) * part.ComputeSeconds(paramCount, cfg.BatchSize)
				outs[j] = avgOut{
					lastAcc: lastAcc, delta: delta,
					seconds: comm + comp, bn: run.drainBN(worker),
				}
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("round %d: %w", round, err)
			}
			for j, part := range selected {
				out := &outs[j]
				roundTrainAcc += out.lastAcc
				w := float64(part.NumSamples) / float64(totalSamples)
				for i := range params {
					weightedDelta[i].AXPY(w, out.delta[i])
				}
				run.replayBN(out.bn)
				if out.seconds > roundSeconds {
					roundSeconds = out.seconds
				}
			}
			// The primary's weights were never touched during the parallel
			// phase, so they still equal global; no restore needed before
			// applying the aggregate delta.
		} else {
			for _, part := range selected {
				if err := nn.RestoreParamValues(params, global); err != nil {
					return res, fmt.Errorf("round %d participant %d: %w", round, part.ID, err)
				}
				opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay, cfg.GradClip)
				lastAcc := 0.0
				for step := 0; step < cfg.LocalSteps; step++ {
					batch := part.Batcher.Next(cfg.BatchSize)
					x, y := ds.Gather(batch)
					x = cfg.Augment.Apply(x, part.RNG)
					nn.ZeroGrads(params)
					lossRes, err := nn.CrossEntropy(model.Forward(x), y)
					if err != nil {
						return res, fmt.Errorf("round %d participant %d: %w", round, part.ID, err)
					}
					model.Backward(lossRes.GradLogits)
					opt.Step(params)
					lastAcc = lossRes.Accuracy
				}
				roundTrainAcc += lastAcc
				for i, p := range params {
					delta := p.Value.Sub(global[i])
					weightedDelta[i].AXPY(float64(part.NumSamples)/float64(totalSamples), delta)
				}
				// Virtual time: download + local compute + upload.
				comm := 2 * nettrace.TransferSeconds(payloadBytes, bwAt(part, round))
				comp := float64(cfg.LocalSteps) * part.ComputeSeconds(paramCount, cfg.BatchSize)
				if t := comm + comp; t > roundSeconds {
					roundSeconds = t
				}
			}

			if err := nn.RestoreParamValues(params, global); err != nil {
				return res, fmt.Errorf("round %d: %w", round, err)
			}
		}
		for i, p := range params {
			p.Value.AddInPlace(weightedDelta[i])
		}
		res.TrainAcc.Add(round, roundTrainAcc/float64(len(selected)))
		res.RoundSeconds = append(res.RoundSeconds, roundSeconds)
		res.TotalSeconds += roundSeconds
		if cfg.EvalEvery > 0 && (round%cfg.EvalEvery == 0 || round == cfg.Rounds-1) {
			acc, err := run.evaluate(ds, 32)
			if err != nil {
				return res, fmt.Errorf("round %d: %w", round, err)
			}
			res.ValAcc.Add(round, acc)
		}
	}
	final, err := run.evaluate(ds, 32)
	if err != nil {
		return res, err
	}
	res.FinalAcc = final
	return res, nil
}

// bwAt returns the participant's bandwidth at a round, defaulting to a fast
// stable link when no trace is attached (latency not under study).
func bwAt(p *Participant, round int) float64 {
	if len(p.Trace.Mbps) == 0 {
		return 100
	}
	return p.Trace.At(round)
}

// selectCohort returns round's participant subset per the shared sampler:
// everyone when the sampler is full, otherwise the round's seeded cohort
// in ascending ID order (the canonical merge order).
func selectCohort(parts []*Participant, sampler *cohort.Sampler, round int) []*Participant {
	if sampler.Full() {
		return parts
	}
	ids := sampler.Cohort(round)
	out := make([]*Participant, len(ids))
	for i, id := range ids {
		out[i] = parts[id]
	}
	return out
}
