package fed

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/data"
)

func buildTestParts(t *testing.T, ds *data.Dataset, k int, seed int64) []*Participant {
	t.Helper()
	part, err := data.IIDPartition(ds.NumTrain(), k, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := BuildParticipants(ds, part, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func assertSameCurve(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] { // bit-identical, no tolerance
			t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func assertSameParams(t *testing.T, a, b Model) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param count %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		da, db := pa[i].Value.Data(), pb[i].Value.Data()
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("param %d (%s) diverges at %d: %v vs %v",
					i, pa[i].Name, j, da[j], db[j])
			}
		}
	}
}

// TestFedAvgParallelMatchesSequential: the replica-based parallel FedAvg
// must be bit-identical to the original sequential trainer — same training
// curve, same evaluation curve, same final weights.
func TestFedAvgParallelMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	cfg := FedAvgConfig{
		Rounds: 4, LocalSteps: 2, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, GradClip: 5,
		EvalEvery: 2,
	}

	seqModel := tinyModel(rand.New(rand.NewSource(5)), 3)
	seqRes, err := FedAvg(seqModel, ds, buildTestParts(t, ds, 4, 31), cfg)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := cfg
	parCfg.Workers = 4
	parCfg.NewReplica = func() Model { return tinyModel(rand.New(rand.NewSource(99)), 3) }
	parModel := tinyModel(rand.New(rand.NewSource(5)), 3)
	parRes, err := FedAvg(parModel, ds, buildTestParts(t, ds, 4, 31), parCfg)
	if err != nil {
		t.Fatal(err)
	}

	assertSameCurve(t, "train accuracy", seqRes.TrainAcc.Values(), parRes.TrainAcc.Values())
	assertSameCurve(t, "val accuracy", seqRes.ValAcc.Values(), parRes.ValAcc.Values())
	assertSameCurve(t, "round seconds", seqRes.RoundSeconds, parRes.RoundSeconds)
	if seqRes.FinalAcc != parRes.FinalAcc {
		t.Fatalf("final accuracy %v vs %v", seqRes.FinalAcc, parRes.FinalAcc)
	}
	assertSameParams(t, seqModel, parModel)
}

// TestFedSGDParallelMatchesSequential mirrors the FedAvg check for the
// gradient-averaging trainer.
func TestFedSGDParallelMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	cfg := FedSGDConfig{
		Rounds: 6, BatchSize: 8,
		LR: 0.1, Momentum: 0.9, WeightDecay: 1e-4, GradClip: 5,
	}

	seqModel := tinyModel(rand.New(rand.NewSource(5)), 3)
	seqCurve, err := FedSGD(seqModel, ds, buildTestParts(t, ds, 4, 31), cfg)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := cfg
	parCfg.Workers = 4
	parCfg.NewReplica = func() Model { return tinyModel(rand.New(rand.NewSource(99)), 3) }
	parModel := tinyModel(rand.New(rand.NewSource(5)), 3)
	parCurve, err := FedSGD(parModel, ds, buildTestParts(t, ds, 4, 31), parCfg)
	if err != nil {
		t.Fatal(err)
	}

	assertSameCurve(t, "train accuracy", seqCurve.Values(), parCurve.Values())
	assertSameParams(t, seqModel, parModel)
}

// TestRunnerEvaluateMatchesSequential checks the pool-driven test-set
// evaluation against the plain sequential Evaluate.
func TestRunnerEvaluateMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	model := tinyModel(rand.New(rand.NewSource(5)), 3)
	run, err := newRunner(model, 4, 8,
		func() Model { return tinyModel(rand.New(rand.NewSource(99)), 3) })
	if err != nil {
		t.Fatal(err)
	}
	if !run.parallelPath() {
		t.Fatal("expected parallel path")
	}
	for _, batchSize := range []int{7, 16, 32} {
		got, err := run.evaluate(ds, batchSize)
		if err != nil {
			t.Fatal(err)
		}
		if want := Evaluate(model, ds, batchSize); got != want {
			t.Fatalf("batchSize %d: parallel eval %v vs sequential %v", batchSize, got, want)
		}
	}
	// Replicas must be back in capture-mode training for the next round: a
	// training forward records batch statistics, an eval forward does not.
	x, _ := ds.Gather([]int{0, 1, 2, 3})
	for w, rep := range run.reps {
		rep.Forward(x)
		stats := run.drainBN(w)
		recorded := 0
		for _, layer := range stats {
			recorded += len(layer)
		}
		if recorded == 0 {
			t.Fatalf("replica %d left in eval mode after evaluate", w)
		}
	}
}

// TestRunnerRejectsMismatchedReplica: a factory producing a structurally
// different model is a configuration bug and must fail loudly.
func TestRunnerRejectsMismatchedReplica(t *testing.T) {
	model := tinyModel(rand.New(rand.NewSource(5)), 3)
	_, err := newRunner(model, 2, 4,
		func() Model { return tinyModel(rand.New(rand.NewSource(1)), 2) })
	if err == nil {
		t.Fatal("expected structural-mismatch error")
	}
}

// TestRunnerNilFactoryIsSequential: no replica factory means the legacy
// sequential path, not an error.
func TestRunnerNilFactoryIsSequential(t *testing.T) {
	model := tinyModel(rand.New(rand.NewSource(5)), 3)
	run, err := newRunner(model, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.parallelPath() {
		t.Fatal("nil factory must keep the sequential path")
	}
}
