// Package fed is the federated-learning substrate: participants with local
// data shards, a FedAvg trainer (model averaging, McMahan et al.), test-set
// evaluation, and virtual-time cost accounting for rounds. The RL search
// orchestrator in internal/search builds on these pieces; the baselines in
// internal/baselines reuse the same substrate so comparisons are fair.
package fed

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/data"
	"fedrlnas/internal/detrand"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// Model is the minimal trainable-network contract the substrate needs.
// nas.FixedModel and fed.SequentialModel both satisfy it.
type Model interface {
	// Forward maps a [N,C,H,W] batch to [N,classes] logits.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dLoss/dLogits, accumulating parameter gradients.
	Backward(grad *tensor.Tensor)
	// Params returns the learnable parameters.
	Params() []*nn.Param
	// SetTraining toggles train/eval behaviour (batch norm).
	SetTraining(training bool)
}

// SequentialModel adapts an nn.Sequential to the Model interface.
type SequentialModel struct {
	Net *nn.Sequential
}

var _ Model = (*SequentialModel)(nil)

// Forward implements Model.
func (m *SequentialModel) Forward(x *tensor.Tensor) *tensor.Tensor { return m.Net.Forward(x) }

// Backward implements Model.
func (m *SequentialModel) Backward(grad *tensor.Tensor) { m.Net.Backward(grad) }

// Params implements Model.
func (m *SequentialModel) Params() []*nn.Param { return m.Net.Params() }

// SetTraining implements Model.
func (m *SequentialModel) SetTraining(training bool) { m.Net.SetTraining(training) }

// BatchNorms enumerates the network's batch-norm layers in structural
// order, enabling the parallel trainers' ordered stat replay.
func (m *SequentialModel) BatchNorms() []*nn.BatchNorm2D { return nn.CollectBatchNorms(m.Net) }

// Participant is one federated client: a data shard, its own RNG, a compute
// speed, and a bandwidth trace.
type Participant struct {
	ID      int
	Batcher *data.Batcher
	RNG     *rand.Rand
	// Src is the counting source behind RNG; checkpoints persist its
	// position so a resumed run replays the participant's private stream
	// from exactly where it stopped.
	Src *detrand.Source
	// SpeedFactor scales virtual compute time (1.0 = reference device;
	// larger = slower, e.g. a Jetson TX2 vs a 1080 Ti).
	SpeedFactor float64
	// Trace is the participant's bandwidth series (may be zero-valued when
	// latency is not being measured).
	Trace nettrace.Trace
	// ChurnProb is the per-round probability this device is offline (its
	// scenario profile's availability schedule). 0 defers to the run-wide
	// churn setting, preserving pre-scenario streams bit-exactly.
	ChurnProb float64
	// NumSamples is the shard size (FedAvg weighting).
	NumSamples int
}

// newParticipantRNG derives participant k's private deterministic RNG.
// The derivation depends only on (seed, k), never on materialization
// order, which is what lets Population build participants lazily without
// perturbing any stream. The counting source is value-transparent, so the
// stream is identical to the pre-detrand rand.NewSource derivation.
func newParticipantRNG(seed int64, k int) (*rand.Rand, *detrand.Source) {
	return detrand.New(seed + int64(k)*7919)
}

// BuildParticipants constructs K participants over a partition of ds. Every
// participant gets an independent deterministic RNG derived from seed. It
// is the eager façade over Population — callers that sample per-round
// cohorts should hold the Population instead and let it materialize only
// sampled clients.
func BuildParticipants(ds *data.Dataset, part data.Partition, seed int64) ([]*Participant, error) {
	return NewPopulation(part, seed).All()
}

// AttachTraces assigns bandwidth traces to participants (positionally).
func AttachTraces(ps []*Participant, traces []nettrace.Trace) error {
	if len(ps) != len(traces) {
		return fmt.Errorf("fed: %d traces for %d participants", len(traces), len(ps))
	}
	for i, p := range ps {
		p.Trace = traces[i]
	}
	return nil
}

// ComputeSeconds models the virtual time a participant spends on one local
// training step: proportional to parameter count × batch size, scaled by the
// device's SpeedFactor. The constant is calibrated so substrate-scale
// sub-models (hundreds to thousands of parameters at batch 8–32) sit in the
// same compute-dominated regime the paper's 0.27 MB sub-models occupy on a
// GTX 1080 Ti, preserving Table V's device-class ratios.
func (p *Participant) ComputeSeconds(paramCount, batchSize int) float64 {
	const secPerParamSample = 1e-5
	return p.SpeedFactor * secPerParamSample * float64(paramCount) * float64(batchSize)
}

// Evaluate measures top-1 accuracy of model on the dataset's test split,
// processing in batches of at most batchSize. The model is switched to eval
// mode for the measurement and back to training mode afterwards.
func Evaluate(model Model, ds *data.Dataset, batchSize int) float64 {
	model.SetTraining(false)
	defer model.SetTraining(true)
	n := ds.NumTest()
	if n == 0 {
		return 0
	}
	correct := 0.0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		indices := make([]int, end-start)
		for i := range indices {
			indices[i] = start + i
		}
		x, y := ds.GatherTest(indices)
		logits := model.Forward(x)
		correct += nn.Accuracy(logits, y) * float64(len(y))
	}
	return correct / float64(n)
}

// EvaluateTrain measures accuracy on a sample of the training split (for
// train-vs-validation overfitting comparisons, Fig. 11).
func EvaluateTrain(model Model, ds *data.Dataset, indices []int) float64 {
	model.SetTraining(false)
	defer model.SetTraining(true)
	if len(indices) == 0 {
		return 0
	}
	x, y := ds.Gather(indices)
	return nn.Accuracy(model.Forward(x), y)
}
