package fed

import (
	"fmt"

	"fedrlnas/internal/data"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// FedSGD is the paper's second FedAvg variant (Sec. III-A): each round every
// participant computes ONE gradient on its local batch at the current global
// weights and uploads it; the server averages the gradients and takes a
// single SGD step: θ ← θ − η·(1/n)Σ g_k. This is the update rule the search
// phase applies to supernet weights; here it is exposed for fixed models.
type FedSGDConfig struct {
	Rounds    int
	BatchSize int

	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64

	Augment data.AugmentConfig

	// Workers caps how many participants' gradients are computed
	// concurrently; 0 selects runtime.NumCPU(). Training is bit-identical
	// at every worker count (see DESIGN.md §Concurrency).
	Workers int
	// NewReplica builds a model structurally identical to the one being
	// trained, one per worker slot. nil keeps the sequential path.
	NewReplica func() Model
}

// DefaultFedSGDConfig returns substrate-scale defaults.
func DefaultFedSGDConfig() FedSGDConfig {
	return FedSGDConfig{
		Rounds: 60, BatchSize: 16,
		LR: 0.2, Momentum: 0.9, WeightDecay: 3e-4, GradClip: 5,
	}
}

// Validate checks the configuration.
func (c FedSGDConfig) Validate() error {
	if c.Rounds <= 0 || c.BatchSize <= 0 || c.LR <= 0 || c.Workers < 0 {
		return fmt.Errorf("fed: invalid FedSGD config %+v", c)
	}
	return nil
}

// FedSGD trains model with gradient averaging and returns the per-round
// mean local training accuracy.
func FedSGD(model Model, ds *data.Dataset, parts []*Participant, cfg FedSGDConfig) (metrics.Curve, error) {
	var curve metrics.Curve
	if err := cfg.Validate(); err != nil {
		return curve, err
	}
	if len(parts) == 0 {
		return curve, fmt.Errorf("fed: no participants")
	}
	params := model.Params()
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay, cfg.GradClip)
	model.SetTraining(true)
	run, err := newRunner(model, cfg.Workers, len(parts), cfg.NewReplica)
	if err != nil {
		return curve, err
	}

	// sgdOut is one participant's gradient, merged in participant order.
	type sgdOut struct {
		grads []*tensor.Tensor
		acc   float64
		bn    [][]nn.BNStats
	}

	for round := 0; round < cfg.Rounds; round++ {
		agg := make([]*tensor.Tensor, len(params))
		for i, p := range params {
			agg[i] = tensor.New(p.Value.Shape()...)
		}
		acc := 0.0
		if run.parallelPath() {
			// The global weights are constant within a round (the single
			// SGD step happens after aggregation), so every replica is
			// restored to the same snapshot and gradients are exact.
			global := nn.CloneParamValues(params)
			outs := make([]sgdOut, len(parts))
			err := run.pool.Run(len(parts), func(worker, k int) error {
				part := parts[k]
				rep := run.reps[worker]
				rparams := rep.Params()
				if err := nn.RestoreParamValues(rparams, global); err != nil {
					return fmt.Errorf("participant %d: %w", part.ID, err)
				}
				batch := part.Batcher.Next(cfg.BatchSize)
				x, y := ds.Gather(batch)
				x = cfg.Augment.Apply(x, part.RNG)
				nn.ZeroGrads(rparams)
				lossRes, err := nn.CrossEntropy(rep.Forward(x), y)
				if err != nil {
					return fmt.Errorf("participant %d: %w", part.ID, err)
				}
				rep.Backward(lossRes.GradLogits)
				outs[k] = sgdOut{
					grads: nn.CloneParamGrads(rparams),
					acc:   lossRes.Accuracy,
					bn:    run.drainBN(worker),
				}
				return nil
			})
			if err != nil {
				return curve, fmt.Errorf("round %d: %w", round, err)
			}
			for k := range outs {
				for i := range params {
					agg[i].AddInPlace(outs[k].grads[i])
				}
				run.replayBN(outs[k].bn)
				acc += outs[k].acc
			}
		} else {
			for _, part := range parts {
				batch := part.Batcher.Next(cfg.BatchSize)
				x, y := ds.Gather(batch)
				x = cfg.Augment.Apply(x, part.RNG)
				nn.ZeroGrads(params)
				lossRes, err := nn.CrossEntropy(model.Forward(x), y)
				if err != nil {
					return curve, fmt.Errorf("round %d participant %d: %w", round, part.ID, err)
				}
				model.Backward(lossRes.GradLogits)
				for i, p := range params {
					agg[i].AddInPlace(p.Grad)
				}
				acc += lossRes.Accuracy
			}
		}
		inv := 1.0 / float64(len(parts))
		for i, p := range params {
			p.Grad.Zero()
			p.Grad.AXPY(inv, agg[i])
		}
		opt.Step(params)
		curve.Add(round, acc*inv)
	}
	return curve, nil
}
