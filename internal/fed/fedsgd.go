package fed

import (
	"fmt"

	"fedrlnas/internal/data"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// FedSGD is the paper's second FedAvg variant (Sec. III-A): each round every
// participant computes ONE gradient on its local batch at the current global
// weights and uploads it; the server averages the gradients and takes a
// single SGD step: θ ← θ − η·(1/n)Σ g_k. This is the update rule the search
// phase applies to supernet weights; here it is exposed for fixed models.
type FedSGDConfig struct {
	Rounds    int
	BatchSize int

	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64

	Augment data.AugmentConfig
}

// DefaultFedSGDConfig returns substrate-scale defaults.
func DefaultFedSGDConfig() FedSGDConfig {
	return FedSGDConfig{
		Rounds: 60, BatchSize: 16,
		LR: 0.2, Momentum: 0.9, WeightDecay: 3e-4, GradClip: 5,
	}
}

// Validate checks the configuration.
func (c FedSGDConfig) Validate() error {
	if c.Rounds <= 0 || c.BatchSize <= 0 || c.LR <= 0 {
		return fmt.Errorf("fed: invalid FedSGD config %+v", c)
	}
	return nil
}

// FedSGD trains model with gradient averaging and returns the per-round
// mean local training accuracy.
func FedSGD(model Model, ds *data.Dataset, parts []*Participant, cfg FedSGDConfig) (metrics.Curve, error) {
	var curve metrics.Curve
	if err := cfg.Validate(); err != nil {
		return curve, err
	}
	if len(parts) == 0 {
		return curve, fmt.Errorf("fed: no participants")
	}
	params := model.Params()
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay, cfg.GradClip)
	model.SetTraining(true)

	for round := 0; round < cfg.Rounds; round++ {
		agg := make([]*tensor.Tensor, len(params))
		for i, p := range params {
			agg[i] = tensor.New(p.Value.Shape()...)
		}
		acc := 0.0
		for _, part := range parts {
			batch := part.Batcher.Next(cfg.BatchSize)
			x, y := ds.Gather(batch)
			x = cfg.Augment.Apply(x, part.RNG)
			nn.ZeroGrads(params)
			lossRes, err := nn.CrossEntropy(model.Forward(x), y)
			if err != nil {
				return curve, fmt.Errorf("round %d participant %d: %w", round, part.ID, err)
			}
			model.Backward(lossRes.GradLogits)
			for i, p := range params {
				agg[i].AddInPlace(p.Grad)
			}
			acc += lossRes.Accuracy
		}
		inv := 1.0 / float64(len(parts))
		for i, p := range params {
			p.Grad.Zero()
			p.Grad.AXPY(inv, agg[i])
		}
		opt.Step(params)
		curve.Add(round, acc*inv)
	}
	return curve, nil
}
