# Tier-1 targets. `make check` is the PR gate: vet + gofmt + build + tests
# + race detector over the concurrent paths (GEMM kernel, parallel engine,
# trainers, telemetry, RPC) + a 1-iteration bench smoke over the tensor/nn
# kernels + a 1-round wire-protocol smoke + a chaos smoke (one
# participant killed and resurrected mid-run, fixed seed). `make bench`
# measures round throughput across worker counts and writes
# BENCH_rounds.json; `make benchrpc` measures the RPC wire protocol
# across payload encodings and writes BENCH_rpc.json; `make benchchaos`
# runs the full fault-injection soak (K=8, two kills, one resurrection)
# and writes BENCH_chaos.json; `make benchscale` sweeps the enrolled
# population (10 → 10,000 at a fixed sampled cohort), gates on flat
# per-round cost and sharded-merge bit-identity, and writes
# BENCH_scale.json. `make benchserve` drives closed-loop inference clients
# against the resident serving path while a background search job trains
# in-process, sweeps the micro-batching policy (max-batch 1/8/32), gates on
# logits-checksum identity and the batch-32 QPS multiple, and writes
# BENCH_serve.json.
# `make benchprofiles` runs the scenario engine across the device-profile
# catalog plus a mixed population, gates on the empty-scenario θ pin and on
# personalized heads beating the global head under Dirichlet skew, and
# writes BENCH_profiles.json.
.PHONY: check build test race fmt bench bench-smoke benchrpc benchchaos benchscale benchserve benchprofiles fedtrace

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/tensor/... ./internal/parallel/... ./internal/nn/... \
		./internal/fed/... ./internal/search/... ./internal/baselines/... \
		./internal/rpcfed/... ./internal/telemetry/... ./internal/cohort/... \
		./internal/serve/... ./internal/scenario/...

bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./internal/tensor/... ./internal/nn/...

fmt:
	gofmt -w .

bench:
	go test ./internal/tensor -run TestKernelVariantsBitIdentical -count=1
	go run ./cmd/benchrounds -out BENCH_rounds.json

benchrpc:
	go run ./cmd/benchrpc -rounds 30 -out BENCH_rpc.json

benchchaos:
	go run ./cmd/benchchaos -out BENCH_chaos.json

benchscale:
	go run ./cmd/benchscale -out BENCH_scale.json

benchserve:
	go run ./cmd/benchserve -out BENCH_serve.json

benchprofiles:
	go run ./cmd/benchprofiles -out BENCH_profiles.json

# Trace a short K=4 run into ./traces/ and print its critical-path profile.
fedtrace:
	go run ./cmd/benchrpc -k 4 -rounds 3 -modes fp64 -out "" -trace-dir traces
	go run ./cmd/fedtrace -min-rounds 3 traces/*.jsonl
