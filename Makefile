# Tier-1 targets. `make check` is the PR gate: vet + gofmt + build + tests
# + race detector over the concurrent telemetry/search/RPC paths.
.PHONY: check build test race fmt

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/search/... ./internal/rpcfed/... ./internal/telemetry/...

fmt:
	gofmt -w .
