# Tier-1 targets. `make check` is the PR gate: vet + gofmt + build + tests
# + race detector over the concurrent paths (parallel engine, trainers,
# telemetry, RPC). `make bench` measures round throughput across worker
# counts and writes BENCH_rounds.json.
.PHONY: check build test race fmt bench

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/parallel/... ./internal/nn/... ./internal/fed/... \
		./internal/search/... ./internal/baselines/... ./internal/rpcfed/... \
		./internal/telemetry/...

fmt:
	gofmt -w .

bench:
	go run ./cmd/benchrounds -out BENCH_rounds.json
